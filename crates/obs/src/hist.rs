//! Log-bucketed latency histograms.
//!
//! HDR-style layout: values below `2^SUB_BITS` get exact (width-1)
//! buckets; above that, each power-of-two octave is split into
//! `2^SUB_BITS` sub-buckets, so relative error is bounded by
//! `2^-SUB_BITS` (~3% at `SUB_BITS = 5`) across the whole `u64` range.
//! Cells are `AtomicU64`s — recording is one relaxed `fetch_add` plus
//! three bookkeeping atomics, safe from any thread, and histograms
//! merge cell-wise so per-shard instances can be folded into one.
//!
//! This replaces the lossy `*_ns` running sums: a sum-and-count pair
//! can only ever answer "mean", which hides exactly the tail the
//! ROADMAP's p99-under-concurrency targets ask about.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` cells.
pub const SUB_BITS: u32 = 5;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total cell count covering every `u64` value.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// The cell index a value lands in. Exact below `2^SUB_BITS`, then
/// `(octave, sub-bucket)` keyed off the most significant bit.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB_COUNT - 1);
    (msb - SUB_BITS + 1) as usize * SUB_COUNT + sub
}

/// Smallest value mapping to cell `i` (the bucket's lower edge).
fn bucket_floor(i: usize) -> u64 {
    if i < SUB_COUNT {
        return i as u64;
    }
    let octave = (i / SUB_COUNT) as u32;
    let sub = (i % SUB_COUNT) as u64;
    (SUB_COUNT as u64 | sub) << (octave - 1)
}

/// Largest value mapping to cell `i` (the bucket's upper edge).
fn bucket_ceil(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_floor(i + 1) - 1
    }
}

/// A mergeable, lock-free, log-bucketed histogram of `u64` samples
/// (nanoseconds by convention, deterministic ticks under the sim clock).
pub struct Histogram {
    cells: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            cells: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; callable from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cells[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps only after ~2^64 total nanoseconds).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean sample, 0.0 when empty. Kept for continuity with the old
    /// running-sum metrics; prefer the quantiles.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the
    /// bucket holding the rank-`ceil(q·count)` sample (clamped by the
    /// exact max), so the answer is within one sub-bucket (~3%) of the
    /// true order statistic. Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, c) in self.cells.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return bucket_ceil(i).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every cell of `other` into `self` (and count/sum/max), so
    /// per-shard histograms fold into one. Both sides stay usable.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.cells.iter().zip(other.cells.iter()) {
            let t = theirs.load(Ordering::Relaxed);
            if t != 0 {
                mine.fetch_add(t, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes every cell and the bookkeeping counters.
    pub fn clear(&self) {
        for c in self.cells.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time summary (count, sum, max, p50/p90/p99/p999).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            p999: self.value_at_quantile(0.999),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram({:?})", self.snapshot())
    }
}

/// A frozen histogram summary — what exporters and reports carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Median (upper bucket edge, within one sub-bucket).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Mean sample, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every boundary value maps one past its predecessor's bucket.
        for shift in SUB_BITS..63 {
            let v = 1u64 << shift;
            assert_eq!(bucket_index(v), bucket_index(v - 1) + 1, "v={v}");
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Floor/ceil bracket the index everywhere we can cheaply probe.
        for i in 0..NUM_BUCKETS {
            let lo = bucket_floor(i);
            let hi = bucket_ceil(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn exact_region_is_exact() {
        let h = Histogram::new();
        for v in 0..SUB_COUNT as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_COUNT as u64);
        assert_eq!(h.max(), SUB_COUNT as u64 - 1);
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), SUB_COUNT as u64 - 1);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in µs steps
        }
        let p50 = h.value_at_quantile(0.50);
        let p99 = h.value_at_quantile(0.99);
        // Within one sub-bucket (~3%) of the true order statistics.
        assert!((470_000..=530_000).contains(&p50), "p50={p50}");
        assert!((960_000..=1_000_000).contains(&p99), "p99={p99}");
        assert_eq!(h.max(), 1_000_000);
        assert!(h.value_at_quantile(1.0) == 1_000_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in [3u64, 77, 1 << 20, u64::MAX, 0, 12345] {
            (if v % 2 == 0 { &a } else { &b }).record(v);
            whole.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), whole.snapshot());
    }

    #[test]
    fn clear_resets() {
        let h = Histogram::new();
        h.record(42);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }
}
