//! Simulated block storage for the Backlog (FAST'10) reproduction.
//!
//! The paper's evaluation reports costs in *device-level units* — 4 KB page
//! writes per block operation, page reads per query — plus a time overhead
//! measured on a 15K RPM SAS drive. This crate provides the substrate that
//! makes those units measurable in a deterministic, hardware-independent way:
//!
//! * [`SimDisk`] — a page-addressable in-memory device that stores real page
//!   contents, counts every read and write, and charges a configurable
//!   [`LatencyModel`] (seek + rotation + transfer) to a simulated clock.
//! * [`PageCache`] — an LRU read cache layered on a device, mirroring the
//!   32 MB cache used in the paper's micro-benchmarks.
//! * [`FileStore`] / [`VFile`] — a minimal extent-allocating file layer used
//!   by the LSM read-store runs; files are written append-only and read
//!   randomly, exactly the access pattern of Stepped-Merge run files.
//! * [`Completion`] — the handle returned by the submit-side device API
//!   ([`Device::submit_read`] / [`Device::submit_write`] /
//!   [`Device::submit_flush`]). Submitted operations are scheduled onto
//!   `queue_depth` parallel service slots, so pipelined callers overlap
//!   device latency instead of summing it; the sync `read_page`/`write_page`
//!   API is a submit-then-wait shim over the same path.
//! * [`IoStats`] — cheap atomic counters with snapshot/delta support so
//!   experiments can attribute I/O to phases (normal operation, consistency
//!   points, maintenance, queries).
//!
//! Everything here is deterministic: no wall-clock time, no OS file system,
//! no background threads. Two runs of the same workload produce identical
//! counter values, which is what the experiment harness in `backlog-bench`
//! relies on. (Concurrency benchmarks may opt into
//! [`SimDisk::set_latency_emulation`], which additionally parks the calling
//! thread for each access's modeled latency so wall-clock overlap between
//! threads becomes measurable; counters stay deterministic either way.)
//!
//! Every type here is `Send + Sync`: devices, caches and the file store are
//! internally synchronized so LSM tables can be read and rebuilt from
//! multiple threads at once.
//!
//! # Example
//!
//! ```
//! use blockdev::{Device, DeviceConfig, SimDisk, PAGE_SIZE};
//!
//! let disk = SimDisk::new(DeviceConfig::default());
//! let page = vec![7u8; PAGE_SIZE];
//! disk.write_page(42, &page).unwrap();
//! let back = disk.read_page(42).unwrap();
//! assert_eq!(back[0], 7);
//! assert_eq!(disk.stats().snapshot().page_writes, 1);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod cache;
mod completion;
mod device;
mod error;
mod latency;
/// I/O counters, latency histograms, and engine-installable trace hooks.
pub mod stats;
mod superblock;
mod vfile;

pub use cache::PageCache;
pub use completion::{Completer, Completion};
pub use device::{
    Device, DeviceConfig, FaultProfile, LatencyJitter, PowerCutProfile, PowerCutReport, SimDisk,
    SECTOR_SIZE,
};
pub use error::{DeviceError, Result};
pub use latency::{LatencyModel, SimClock};
pub use stats::{IoStats, IoStatsSnapshot};
pub use superblock::{
    fnv1a64, Superblock, FIRST_DATA_PAGE, MAX_MANIFEST_EXTENTS, SUPERBLOCK_PAGES,
};
pub use vfile::{FileId, FileMap, FileStore, PersistedFile, VFile};

/// Size of a device page in bytes (the paper's 4 KB block size).
pub const PAGE_SIZE: usize = 4096;

/// A physical page number on a simulated device.
pub type PageNo = u64;

// Compile-time `Send + Sync` guarantees (static_assertions-style): the whole
// concurrency model — shared runs, parallel partition maintenance, concurrent
// readers — rests on these types being safely shareable across threads.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<SimDisk>();
    assert::<PageCache>();
    assert::<FileStore>();
    assert::<FileMap>();
    assert::<IoStats>();
    assert::<SimClock>();
    assert::<Completion>();
    assert::<std::sync::Arc<dyn Device>>();
}
