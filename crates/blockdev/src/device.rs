use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{DeviceError, Result};
use crate::latency::{LatencyModel, SimClock};
use crate::stats::IoStats;
use crate::{PageNo, PAGE_SIZE};

/// Configuration for a [`SimDisk`].
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Device capacity in 4 KB pages. Defaults to 64 Gi pages (effectively
    /// unbounded for simulation purposes).
    pub capacity_pages: u64,
    /// Latency model charged for every access.
    pub latency: LatencyModel,
    /// If false, page payloads are not retained (only counters are kept).
    /// The LSM layer requires payload storage; pure overhead experiments that
    /// never read data back may disable it to save host memory.
    pub store_payloads: bool,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            capacity_pages: 64 * 1024 * 1024 * 1024 / PAGE_SIZE as u64 * 1024,
            latency: LatencyModel::default(),
            store_payloads: true,
        }
    }
}

impl DeviceConfig {
    /// A config with zero-latency accesses, convenient in unit tests.
    pub fn free_latency() -> Self {
        DeviceConfig {
            latency: LatencyModel::free(),
            ..Default::default()
        }
    }

    /// Sets the capacity in pages.
    pub fn with_capacity_pages(mut self, pages: u64) -> Self {
        self.capacity_pages = pages;
        self
    }

    /// Sets the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Enables or disables payload retention.
    pub fn with_payloads(mut self, store: bool) -> Self {
        self.store_payloads = store;
        self
    }
}

/// The interface shared by raw and cached devices.
///
/// `Device` is object-safe; higher layers hold `Arc<dyn Device>` so that the
/// LSM store can run against either a raw [`SimDisk`] or a
/// [`PageCache`](crate::PageCache)-wrapped one.
pub trait Device: Send + Sync + std::fmt::Debug {
    /// Reads page `page` into a freshly allocated buffer of [`PAGE_SIZE`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnwrittenPage`] if the page has never been
    /// written and [`DeviceError::OutOfRange`] if it is beyond the capacity.
    fn read_page(&self, page: PageNo) -> Result<Vec<u8>>;

    /// Writes one page. `data` must be at most [`PAGE_SIZE`] bytes; shorter
    /// buffers are implicitly zero-padded to a full page.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadBufferLength`] if `data` exceeds one page
    /// and [`DeviceError::OutOfRange`] if the page is beyond the capacity.
    fn write_page(&self, page: PageNo, data: &[u8]) -> Result<()>;

    /// The I/O counters for this device.
    fn stats(&self) -> &IoStats;

    /// The simulated clock advanced by this device's accesses.
    fn clock(&self) -> &SimClock;

    /// Device capacity in pages.
    fn capacity_pages(&self) -> u64;
}

/// An in-memory simulated disk with I/O accounting and a latency model.
///
/// All methods take `&self`; the disk is internally synchronized and can be
/// shared between components through an [`Arc`].
#[derive(Debug)]
pub struct SimDisk {
    config: DeviceConfig,
    pages: Mutex<HashMap<PageNo, Box<[u8]>>>,
    written: Mutex<std::collections::HashSet<PageNo>>,
    last_page: Mutex<Option<PageNo>>,
    /// `Some(n)`: the next `n` writes succeed and every write after them
    /// fails with [`DeviceError::InjectedFault`] until the injection is
    /// cleared. `None`: no injection.
    write_fault_after: Mutex<Option<u64>>,
    /// When set, every access parks the calling thread for its modeled
    /// latency in addition to advancing the simulated clock, so wall-clock
    /// concurrency experiments see a device that really blocks.
    emulate_latency: AtomicBool,
    stats: IoStats,
    clock: Arc<SimClock>,
}

impl SimDisk {
    /// Creates a new empty disk.
    pub fn new(config: DeviceConfig) -> Self {
        SimDisk {
            config,
            pages: Mutex::new(HashMap::new()),
            written: Mutex::new(std::collections::HashSet::new()),
            last_page: Mutex::new(None),
            write_fault_after: Mutex::new(None),
            emulate_latency: AtomicBool::new(false),
            stats: IoStats::new(),
            clock: Arc::new(SimClock::new()),
        }
    }

    /// Creates a disk wrapped in an [`Arc`], the common usage pattern.
    pub fn new_shared(config: DeviceConfig) -> Arc<Self> {
        Arc::new(Self::new(config))
    }

    /// Number of distinct pages that have ever been written.
    pub fn pages_written(&self) -> u64 {
        self.written.lock().len() as u64
    }

    /// Returns the configuration this disk was created with.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Arms write-fault injection: the next `successful` writes complete
    /// normally, then every subsequent write fails with
    /// [`DeviceError::InjectedFault`] until
    /// [`clear_write_fault`](Self::clear_write_fault) is called. Used by
    /// tests that exercise error-recovery paths (e.g. a consistency-point
    /// flush dying mid-run).
    pub fn fail_writes_after(&self, successful: u64) {
        *self.write_fault_after.lock() = Some(successful);
    }

    /// Disarms write-fault injection.
    pub fn clear_write_fault(&self) {
        *self.write_fault_after.lock() = None;
    }

    /// Switches real-time latency emulation on or off. While enabled, every
    /// access blocks the calling thread for the latency the model charges
    /// (in addition to advancing the simulated clock), which is how the
    /// concurrency benchmarks measure wall-clock overlap: parallel
    /// maintenance workers and readers genuinely wait on "the device" and
    /// their waits genuinely overlap. Off by default so tests and
    /// simulated-time experiments run at memory speed.
    pub fn set_latency_emulation(&self, enabled: bool) {
        self.emulate_latency.store(enabled, Ordering::Relaxed);
    }

    fn charge(&self, page: PageNo, bytes: usize) {
        let mut last = self.last_page.lock();
        let ns = self.config.latency.access_ns(*last, page, bytes);
        if self.config.latency.is_seek(*last, page) {
            self.stats.record_seek();
        }
        *last = Some(page);
        drop(last);
        self.stats.record_device_ns(ns);
        self.clock.advance_ns(ns);
        // Park outside every lock: an emulated-latency access must stall only
        // its own thread, never other threads' accesses.
        if ns > 0 && self.emulate_latency.load(Ordering::Relaxed) {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }

    fn check_range(&self, page: PageNo) -> Result<()> {
        if page >= self.config.capacity_pages {
            Err(DeviceError::OutOfRange {
                page,
                capacity: self.config.capacity_pages,
            })
        } else {
            Ok(())
        }
    }
}

impl Device for SimDisk {
    fn read_page(&self, page: PageNo) -> Result<Vec<u8>> {
        self.check_range(page)?;
        if !self.written.lock().contains(&page) {
            return Err(DeviceError::UnwrittenPage { page });
        }
        self.charge(page, PAGE_SIZE);
        self.stats.record_read(PAGE_SIZE as u64);
        let pages = self.pages.lock();
        Ok(match pages.get(&page) {
            Some(data) => data.to_vec(),
            // Payload storage disabled: return a zero page.
            None => vec![0u8; PAGE_SIZE],
        })
    }

    fn write_page(&self, page: PageNo, data: &[u8]) -> Result<()> {
        self.check_range(page)?;
        if data.len() > PAGE_SIZE {
            return Err(DeviceError::BadBufferLength { got: data.len() });
        }
        {
            let mut fault = self.write_fault_after.lock();
            if let Some(remaining) = fault.as_mut() {
                if *remaining == 0 {
                    return Err(DeviceError::InjectedFault { page });
                }
                *remaining -= 1;
            }
        }
        self.charge(page, PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE as u64);
        self.written.lock().insert(page);
        if self.config.store_payloads {
            let mut buf = vec![0u8; PAGE_SIZE];
            buf[..data.len()].copy_from_slice(data);
            self.pages.lock().insert(page, buf.into_boxed_slice());
        }
        Ok(())
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn capacity_pages(&self) -> u64 {
        self.config.capacity_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DeviceConfig::free_latency())
    }

    #[test]
    fn write_then_read_roundtrips() {
        let d = disk();
        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 0xAB;
        data[PAGE_SIZE - 1] = 0xCD;
        d.write_page(5, &data).unwrap();
        let back = d.read_page(5).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn short_writes_are_zero_padded() {
        let d = disk();
        d.write_page(1, &[1, 2, 3]).unwrap();
        let back = d.read_page(1).unwrap();
        assert_eq!(&back[..3], &[1, 2, 3]);
        assert!(back[3..].iter().all(|&b| b == 0));
        assert_eq!(back.len(), PAGE_SIZE);
    }

    #[test]
    fn reading_unwritten_page_errors() {
        let d = disk();
        assert_eq!(
            d.read_page(9).unwrap_err(),
            DeviceError::UnwrittenPage { page: 9 }
        );
    }

    #[test]
    fn oversized_write_errors() {
        let d = disk();
        let big = vec![0u8; PAGE_SIZE + 1];
        assert_eq!(
            d.write_page(0, &big).unwrap_err(),
            DeviceError::BadBufferLength { got: PAGE_SIZE + 1 }
        );
    }

    #[test]
    fn out_of_range_errors() {
        let d = SimDisk::new(DeviceConfig::free_latency().with_capacity_pages(10));
        assert!(matches!(
            d.write_page(10, &[0]),
            Err(DeviceError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.read_page(11),
            Err(DeviceError::OutOfRange { .. })
        ));
    }

    #[test]
    fn counters_track_io() {
        let d = disk();
        d.write_page(0, &[0]).unwrap();
        d.write_page(1, &[0]).unwrap();
        d.read_page(0).unwrap();
        let s = d.stats().snapshot();
        assert_eq!(s.page_writes, 2);
        assert_eq!(s.page_reads, 1);
        assert_eq!(s.bytes_written, 2 * PAGE_SIZE as u64);
        assert_eq!(d.pages_written(), 2);
    }

    #[test]
    fn latency_advances_clock_and_counts_seeks() {
        let d = SimDisk::new(DeviceConfig::default());
        d.write_page(0, &[0]).unwrap();
        d.write_page(1, &[0]).unwrap(); // sequential: no seek
        d.write_page(1000, &[0]).unwrap(); // seek
        let s = d.stats().snapshot();
        assert_eq!(s.seeks, 2, "first access and the jump both seek");
        assert!(d.clock().now_ns() > 0);
        assert!(s.device_ns > 0);
    }

    #[test]
    fn payloads_can_be_disabled() {
        let d = SimDisk::new(DeviceConfig::free_latency().with_payloads(false));
        d.write_page(3, &[9, 9, 9]).unwrap();
        let back = d.read_page(3).unwrap();
        assert!(back.iter().all(|&b| b == 0));
        assert_eq!(d.stats().snapshot().page_writes, 1);
    }

    #[test]
    fn latency_emulation_blocks_the_calling_thread() {
        // 2 ms per random access is far above the scheduler's sleep
        // granularity, so the wall-clock difference is unambiguous.
        let model = LatencyModel {
            seek_ns: 2_000_000,
            ns_per_byte: 0.0,
            sequential_window: 1,
        };
        let d = SimDisk::new(DeviceConfig::free_latency().with_latency(model));
        let start = std::time::Instant::now();
        d.write_page(0, &[0]).unwrap();
        d.write_page(10_000, &[0]).unwrap();
        // Generous upper bound: two in-memory writes take microseconds, but
        // a loaded CI runner can preempt the thread mid-test.
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "without emulation the clock is simulated only"
        );
        d.set_latency_emulation(true);
        let start = std::time::Instant::now();
        d.write_page(20_000, &[0]).unwrap();
        d.write_page(40_000, &[0]).unwrap();
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(4),
            "two emulated random accesses must park for ~2 ms each"
        );
        d.set_latency_emulation(false);
    }

    #[test]
    fn overwrite_replaces_content() {
        let d = disk();
        d.write_page(2, &[1; 16]).unwrap();
        d.write_page(2, &[2; 16]).unwrap();
        assert_eq!(&d.read_page(2).unwrap()[..16], &[2; 16]);
        assert_eq!(d.pages_written(), 1);
    }
}
