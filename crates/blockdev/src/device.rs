use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
// backlint: allow(determinism) — wall-clock time is used for latency emulation only; it never reaches encoded bytes
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::completion::Completion;
use crate::error::{DeviceError, Result};
use crate::latency::{LatencyModel, SimClock};
use crate::stats::IoStats;
use crate::{PageNo, PAGE_SIZE};

/// The sector size used by the torn-write model: a torn page persists a
/// whole number of sectors, never a partial one.
pub const SECTOR_SIZE: usize = 512;

/// Configuration for a [`SimDisk`].
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Device capacity in 4 KB pages. Defaults to 64 Gi pages (effectively
    /// unbounded for simulation purposes).
    pub capacity_pages: u64,
    /// Latency model charged for every access.
    pub latency: LatencyModel,
    /// If false, page payloads are not retained (only counters are kept).
    /// The LSM layer requires payload storage; pure overhead experiments that
    /// never read data back may disable it to save host memory.
    pub store_payloads: bool,
    /// Number of operations the device services concurrently: submitted
    /// operations are scheduled onto this many parallel service slots, so up
    /// to `queue_depth` latencies overlap instead of summing. Callers using
    /// only the sync API never observe the depth (each operation waits
    /// before the next submits); pipelined callers see wall-clock and
    /// simulated time shrink toward `total / queue_depth`.
    pub queue_depth: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            capacity_pages: 64 * 1024 * 1024 * 1024 / PAGE_SIZE as u64 * 1024,
            latency: LatencyModel::default(),
            store_payloads: true,
            queue_depth: 16,
        }
    }
}

impl DeviceConfig {
    /// A config with zero-latency accesses, convenient in unit tests.
    pub fn free_latency() -> Self {
        DeviceConfig {
            latency: LatencyModel::free(),
            ..Default::default()
        }
    }

    /// Sets the capacity in pages.
    pub fn with_capacity_pages(mut self, pages: u64) -> Self {
        self.capacity_pages = pages;
        self
    }

    /// Sets the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Enables or disables payload retention.
    pub fn with_payloads(mut self, store: bool) -> Self {
        self.store_payloads = store;
        self
    }

    /// Sets the queue depth (clamped to at least 1).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }
}

/// Seeded per-operation latency jitter: every dispatched operation draws an
/// extra service time uniformly from `[min_ns, max_ns]` using a generator
/// seeded with `seed`. Draws happen at submit, in submission order, so a
/// jitter schedule — like a [`FaultProfile`] schedule — replays bit-for-bit
/// from its seed. The simulator uses this to perturb completion timing (and
/// therefore the overlap the pipelined paths see) without breaking
/// determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyJitter {
    /// Seed for the jitter generator.
    pub seed: u64,
    /// Minimum extra service time per operation, nanoseconds.
    pub min_ns: u64,
    /// Maximum extra service time per operation, nanoseconds.
    pub max_ns: u64,
}

#[derive(Debug)]
struct JitterState {
    jitter: LatencyJitter,
    rng: StdRng,
}

/// Per-operation probabilistic fault injection, seeded for reproducibility.
///
/// Unlike the counter-based [`SimDisk::fail_writes_after`] /
/// [`SimDisk::fail_reads_after`] injections (which kill exactly one scheduled
/// operation), a profile makes *every* I/O a biased coin flip drawn from a
/// seeded generator, so a whole workload sees a realistic scatter of failures
/// that replays bit-for-bit from the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Seed for the fault generator.
    pub seed: u64,
    /// Probability that a read fails with [`DeviceError::InjectedFault`].
    pub read_fault: f64,
    /// Probability that a write fails with [`DeviceError::InjectedFault`].
    pub write_fault: f64,
    /// Given a write fault, the probability that the failed write still tears
    /// the target page: a sector-aligned prefix of the new content persists
    /// over the old content before the error is reported. Zero means failed
    /// writes have no effect on media, matching the counter-based injection.
    pub torn_write: f64,
}

impl FaultProfile {
    /// A profile that never fires; useful as a base for struct update syntax.
    pub fn quiet(seed: u64) -> Self {
        FaultProfile {
            seed,
            read_fault: 0.0,
            write_fault: 0.0,
            torn_write: 0.0,
        }
    }
}

/// The fate distribution for unflushed cached writes at a simulated power
/// cut: each cached page independently persists whole, persists torn
/// (sector-aligned prefix), or is lost entirely.
///
/// Probabilities are evaluated in order: a draw below `persist` persists the
/// page, a draw below `persist + torn` tears it, anything else loses it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCutProfile {
    /// Seed for the per-page fate draws (independent of the fault profile,
    /// so a cut is reproducible regardless of how many I/Os preceded it).
    pub seed: u64,
    /// Probability that a cached page persists in full.
    pub persist: f64,
    /// Probability that a cached page persists a torn prefix.
    pub torn: f64,
}

impl PowerCutProfile {
    /// Every unflushed write is discarded — the harshest (and simplest) cut.
    pub fn lose_all(seed: u64) -> Self {
        PowerCutProfile {
            seed,
            persist: 0.0,
            torn: 0.0,
        }
    }
}

/// What a [`SimDisk::power_cut`] did to the unflushed write cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PowerCutReport {
    /// Cached pages that persisted in full.
    pub persisted: u64,
    /// Cached pages that persisted a sector-aligned prefix over their
    /// previous stable content.
    pub torn: u64,
    /// Cached pages that were discarded entirely.
    pub lost: u64,
}

impl PowerCutReport {
    /// Total cached pages affected by the cut.
    pub fn total(&self) -> u64 {
        self.persisted + self.torn + self.lost
    }
}

/// The interface shared by raw and cached devices.
///
/// `Device` is object-safe; higher layers hold `Arc<dyn Device>` so that the
/// LSM store can run against either a raw [`SimDisk`] or a
/// [`PageCache`](crate::PageCache)-wrapped one.
pub trait Device: Send + Sync + std::fmt::Debug {
    /// Reads page `page` into a freshly allocated buffer of [`PAGE_SIZE`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnwrittenPage`] if the page has never been
    /// written and [`DeviceError::OutOfRange`] if it is beyond the capacity.
    fn read_page(&self, page: PageNo) -> Result<Vec<u8>>;

    /// Writes one page. `data` must be at most [`PAGE_SIZE`] bytes; shorter
    /// buffers are implicitly zero-padded to a full page.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadBufferLength`] if `data` exceeds one page
    /// and [`DeviceError::OutOfRange`] if the page is beyond the capacity.
    fn write_page(&self, page: PageNo, data: &[u8]) -> Result<()>;

    /// Write barrier: every write issued before this call is durable when it
    /// returns. On a device without a volatile write cache this is a no-op;
    /// on a [`SimDisk`] with [`SimDisk::set_write_cache`] enabled it commits
    /// the cache to stable storage, so a later
    /// [`power_cut`](SimDisk::power_cut) cannot touch those pages.
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceError`] if the device cannot make the outstanding
    /// writes durable. The in-memory simulators never fail a flush.
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Submits a read of page `page` and returns a [`Completion`] that
    /// yields the payload (or error) on
    /// [`wait_read`](Completion::wait_read). Errors surface at the
    /// completion, never at the submit.
    ///
    /// The default implementation services the read synchronously and
    /// returns it pre-resolved, so every `Device` supports the submit API
    /// even if it cannot overlap anything.
    fn submit_read(&self, page: PageNo) -> Completion {
        Completion::ready_data(self.read_page(page))
    }

    /// Submits a write and returns a [`Completion`] for it. See
    /// [`submit_read`](Device::submit_read) for the error and default
    /// semantics; buffer rules match [`write_page`](Device::write_page).
    fn submit_write(&self, page: PageNo, data: &[u8]) -> Completion {
        Completion::ready(self.write_page(page, data))
    }

    /// Submits a write barrier covering every operation submitted before it
    /// and returns a [`Completion`] for it.
    fn submit_flush(&self) -> Completion {
        Completion::ready(self.flush())
    }

    /// How many operations this device can usefully keep in flight at once.
    /// Pipelined writers bound their outstanding completions by a small
    /// multiple of this. The default (1) describes a device whose submit
    /// methods are the synchronous fallbacks.
    fn queue_depth(&self) -> usize {
        1
    }

    /// The I/O counters for this device.
    fn stats(&self) -> &IoStats;

    /// The simulated clock advanced by this device's accesses.
    fn clock(&self) -> &SimClock;

    /// Device capacity in pages.
    fn capacity_pages(&self) -> u64;
}

/// Page payloads split by durability: `stable` survives a power cut, `cache`
/// holds writes accepted but not yet flushed. `BTreeMap` (not `HashMap`) so
/// every iteration — power-cut fate draws, content digests — visits pages in
/// sorted order and stays deterministic across runs and across processes.
#[derive(Debug, Default)]
struct PageStore {
    stable: BTreeMap<PageNo, Box<[u8]>>,
    cache: BTreeMap<PageNo, Box<[u8]>>,
    cache_enabled: bool,
    /// Pages that ever accepted a write, kept across power cuts so
    /// [`SimDisk::pages_written`] still measures write-footprint, not
    /// post-crash survivorship.
    ever_written: HashSet<PageNo>,
}

impl PageStore {
    /// The content a read observes right now (the device always serves the
    /// freshest accepted write, cached or not), or `None` if never written.
    fn visible(&self, page: PageNo) -> Option<&[u8]> {
        self.cache
            .get(&page)
            .or_else(|| self.stable.get(&page))
            .map(|b| &**b)
    }
}

#[derive(Debug)]
struct FaultState {
    profile: FaultProfile,
    rng: StdRng,
}

/// One of the device's parallel service slots. An operation dispatched to a
/// slot starts when the slot's previous operation ends (or now, whichever is
/// later), so at most `queue_depth` latencies overlap.
#[derive(Debug, Clone, Default)]
struct IoSlot {
    /// When this slot's last operation ends on the simulated clock.
    sim_end_ns: u64,
    /// When it ends on the wall clock (latency emulation only).
    // backlint: allow(determinism) — wall-clock deadline drives sleep-based latency emulation only
    wall_end: Option<Instant>,
}

/// The submit-side scheduler: seek tracking, jitter draws and slot
/// assignment all happen under one lock, in submission order, which is what
/// keeps single-threaded schedules (and therefore the deterministic
/// simulator) bit-for-bit reproducible.
#[derive(Debug)]
struct IoSched {
    last_page: Option<PageNo>,
    slots: Vec<IoSlot>,
    jitter: Option<JitterState>,
}

/// An in-memory simulated disk with I/O accounting, a latency model, and a
/// fault plane for crash simulation (injected read/write faults, torn
/// writes, and a volatile write cache discarded at power cuts).
///
/// All methods take `&self`; the disk is internally synchronized and can be
/// shared between components through an [`Arc`].
#[derive(Debug)]
pub struct SimDisk {
    config: DeviceConfig,
    store: Mutex<PageStore>,
    sched: Mutex<IoSched>,
    /// Submitted-but-not-yet-waited operations (shared with completion
    /// tickets, which decrement it when the operation retires).
    in_flight: Arc<AtomicU64>,
    /// `Some(n)`: the next `n` writes succeed and every write after them
    /// fails with [`DeviceError::InjectedFault`] until the injection is
    /// cleared. `None`: no injection.
    write_fault_after: Mutex<Option<u64>>,
    /// The read-side twin of `write_fault_after`.
    read_fault_after: Mutex<Option<u64>>,
    /// Probabilistic per-op faults; `None` disables them entirely.
    faults: Mutex<Option<FaultState>>,
    /// When set, waiting on a completion parks the calling thread until the
    /// operation's modeled finish time, so wall-clock concurrency
    /// experiments see a device that really blocks — and pipelined
    /// submitters see their waits overlap.
    emulate_latency: AtomicBool,
    stats: Arc<IoStats>,
    clock: Arc<SimClock>,
}

impl SimDisk {
    /// Creates a new empty disk.
    pub fn new(config: DeviceConfig) -> Self {
        let slots = config.queue_depth.max(1);
        SimDisk {
            config,
            store: Mutex::new(PageStore::default()),
            sched: Mutex::new(IoSched {
                last_page: None,
                slots: vec![IoSlot::default(); slots],
                jitter: None,
            }),
            in_flight: Arc::new(AtomicU64::new(0)),
            write_fault_after: Mutex::new(None),
            read_fault_after: Mutex::new(None),
            faults: Mutex::new(None),
            emulate_latency: AtomicBool::new(false),
            stats: Arc::new(IoStats::new()),
            clock: Arc::new(SimClock::new()),
        }
    }

    /// Creates a disk wrapped in an [`Arc`], the common usage pattern.
    pub fn new_shared(config: DeviceConfig) -> Arc<Self> {
        Arc::new(Self::new(config))
    }

    /// Number of distinct pages that have ever been written (torn and
    /// power-cut-lost pages included: the counter measures write footprint,
    /// not what survived).
    pub fn pages_written(&self) -> u64 {
        self.store.lock().ever_written.len() as u64
    }

    /// Returns the configuration this disk was created with.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Arms write-fault injection: the next `successful` writes complete
    /// normally, then every subsequent write fails with
    /// [`DeviceError::InjectedFault`] until
    /// [`clear_write_fault`](Self::clear_write_fault) is called. Used by
    /// tests that exercise error-recovery paths (e.g. a consistency-point
    /// flush dying mid-run).
    pub fn fail_writes_after(&self, successful: u64) {
        *self.write_fault_after.lock() = Some(successful);
    }

    /// Disarms write-fault injection.
    pub fn clear_write_fault(&self) {
        *self.write_fault_after.lock() = None;
    }

    /// Arms read-fault injection: the next `successful` reads complete
    /// normally, then every subsequent read fails with
    /// [`DeviceError::InjectedFault`] until
    /// [`clear_read_fault`](Self::clear_read_fault) is called. Recovery
    /// tests walk this counter across an entire `open` to prove no read
    /// failure point can panic the engine or damage the durable state.
    pub fn fail_reads_after(&self, successful: u64) {
        *self.read_fault_after.lock() = Some(successful);
    }

    /// Disarms read-fault injection.
    pub fn clear_read_fault(&self) {
        *self.read_fault_after.lock() = None;
    }

    /// Installs (or with `None`, removes) a probabilistic fault profile.
    /// Replacing the profile reseeds the fault generator from
    /// `profile.seed`, so a schedule replays exactly.
    pub fn set_fault_profile(&self, profile: Option<FaultProfile>) {
        *self.faults.lock() = profile.map(|profile| FaultState {
            profile,
            rng: StdRng::seed_from_u64(profile.seed),
        });
    }

    /// Enables or disables the volatile write cache. While enabled, writes
    /// land in a cache that only [`flush`](Device::flush) commits to stable
    /// storage; a [`power_cut`](Self::power_cut) discards or tears whatever
    /// is still cached. Disabling the cache flushes it first, so no accepted
    /// write is silently dropped by the mode switch.
    pub fn set_write_cache(&self, enabled: bool) {
        let mut store = self.store.lock();
        if !enabled {
            let cache = std::mem::take(&mut store.cache);
            store.stable.extend(cache);
        }
        store.cache_enabled = enabled;
    }

    /// Number of pages currently sitting in the volatile write cache.
    pub fn cached_pages(&self) -> u64 {
        self.store.lock().cache.len() as u64
    }

    /// Simulates a power cut: every page still in the volatile write cache
    /// independently persists, tears (a sector-aligned prefix of the new
    /// content lands over the previous stable content), or vanishes,
    /// according to `profile`. Flushed pages are untouched. The cache is
    /// empty afterwards; the disk remains usable (the caller typically
    /// reopens the engine from it next).
    ///
    /// Fate draws iterate the cache in page order from a generator seeded by
    /// `profile.seed`, so the post-cut image is a pure function of (writes
    /// accepted, flush points, profile).
    pub fn power_cut(&self, profile: &PowerCutProfile) -> PowerCutReport {
        let mut store = self.store.lock();
        let cache = std::mem::take(&mut store.cache);
        let mut rng = StdRng::seed_from_u64(profile.seed);
        let mut report = PowerCutReport::default();
        for (page, data) in cache {
            let draw: f64 = rng.gen();
            if draw < profile.persist {
                store.stable.insert(page, data);
                report.persisted += 1;
            } else if draw < profile.persist + profile.torn {
                let keep = rng.gen_range(1..PAGE_SIZE / SECTOR_SIZE) * SECTOR_SIZE;
                let merged = tear(&data, keep, store.stable.get(&page).map(|b| &**b));
                store.stable.insert(page, merged);
                report.torn += 1;
            } else {
                report.lost += 1;
            }
        }
        report
    }

    /// Directly installs a torn write on stable storage: the first `keep`
    /// bytes of `data` (zero-padded to a full page) persist, the remainder
    /// of the page keeps its previous stable content (zeros if the page was
    /// never written). A test/simulation primitive — no faults, stats, or
    /// cache involved.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] / [`DeviceError::BadBufferLength`]
    /// under the same conditions as [`write_page`](Device::write_page).
    pub fn tear_page(&self, page: PageNo, data: &[u8], keep: usize) -> Result<()> {
        self.check_range(page)?;
        if data.len() > PAGE_SIZE {
            return Err(DeviceError::BadBufferLength { got: data.len() });
        }
        let mut store = self.store.lock();
        store.ever_written.insert(page);
        if self.config.store_payloads {
            let full = full_page(data);
            let merged = tear(
                &full,
                keep.min(PAGE_SIZE),
                store.stable.get(&page).map(|b| &**b),
            );
            store.stable.insert(page, merged);
        } else {
            store.stable.insert(page, Box::from([] as [u8; 0]));
        }
        Ok(())
    }

    /// An order-independent digest of the complete device image (stable and
    /// cached content separately tagged), for determinism assertions: two
    /// runs of the same seeded scenario must produce equal digests.
    pub fn content_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let fold = |mut h: u64, bytes: &[u8]| -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            h
        };
        let store = self.store.lock();
        let mut h = OFFSET;
        for (tag, map) in [(1u8, &store.stable), (2u8, &store.cache)] {
            for (page, data) in map.iter() {
                h = fold(h, &[tag]);
                h = fold(h, &page.to_le_bytes());
                h = fold(h, &(data.len() as u64).to_le_bytes());
                h = fold(h, data);
            }
        }
        h
    }

    /// Switches real-time latency emulation on or off. While enabled, every
    /// access blocks the calling thread for the latency the model charges
    /// (in addition to advancing the simulated clock), which is how the
    /// concurrency benchmarks measure wall-clock overlap: parallel
    /// maintenance workers and readers genuinely wait on "the device" and
    /// their waits genuinely overlap. Off by default so tests and
    /// simulated-time experiments run at memory speed.
    pub fn set_latency_emulation(&self, enabled: bool) {
        self.emulate_latency.store(enabled, Ordering::Relaxed);
    }

    /// Installs (or with `None`, removes) seeded per-operation latency
    /// jitter. Replacing the jitter reseeds its generator from
    /// `jitter.seed`, so a schedule replays exactly.
    pub fn set_latency_jitter(&self, jitter: Option<LatencyJitter>) {
        self.sched.lock().jitter = jitter.map(|jitter| JitterState {
            jitter,
            rng: StdRng::seed_from_u64(jitter.seed),
        });
    }

    /// Schedules one operation onto a service slot and returns its wall
    /// deadline (latency emulation only) plus the accounting ticket the
    /// returned completion retires it with.
    ///
    /// All device effects other than retiring — seek detection, jitter
    /// draws, counter updates — happen here, at submit, in submission order.
    /// "In flight" is purely a timing fiction on top of that: the ticket
    /// advances the simulated clock to the operation's finish time and drops
    /// it from the in-flight count, nothing else.
    // backlint: allow(determinism) — the returned deadline only delays completion delivery on the wall clock
    fn dispatch(&self, page: PageNo, bytes: usize) -> (Option<Instant>, Box<dyn FnOnce() + Send>) {
        let mut sched = self.sched.lock();
        let mut ns = self.config.latency.access_ns(sched.last_page, page, bytes);
        if self.config.latency.is_seek(sched.last_page, page) {
            self.stats.record_seek();
        }
        sched.last_page = Some(page);
        if let Some(state) = sched.jitter.as_mut() {
            if state.jitter.max_ns > 0 {
                ns += state
                    .rng
                    .gen_range(state.jitter.min_ns..=state.jitter.max_ns);
            }
        }
        // Earliest-free slot: the operation starts when the slot's previous
        // operation ends, so at most `queue_depth` service times overlap.
        let slot = sched
            .slots
            .iter_mut()
            .min_by_key(|slot| slot.sim_end_ns)
            .expect("at least one slot");
        let start_sim = self.clock.now_ns().max(slot.sim_end_ns);
        let end_sim = start_sim + ns;
        slot.sim_end_ns = end_sim;
        let wall_deadline = if ns > 0 && self.emulate_latency.load(Ordering::Relaxed) {
            // backlint: allow(determinism) — wall-clock read feeds latency emulation, not simulated state
            let now = Instant::now();
            let start = match slot.wall_end {
                Some(prev) if prev > now => prev,
                _ => now,
            };
            let end = start + Duration::from_nanos(ns);
            slot.wall_end = Some(end);
            Some(end)
        } else {
            None
        };
        drop(sched);
        self.stats.record_device_ns(ns);
        let now_in_flight = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.record_in_flight(now_in_flight);
        let overlapped = now_in_flight > 1;
        let clock = self.clock.clone();
        let stats = self.stats.clone();
        let in_flight = self.in_flight.clone();
        let ticket = Box::new(move || {
            clock.advance_to(end_sim);
            in_flight.fetch_sub(1, Ordering::Relaxed);
            if overlapped {
                stats.record_async_complete();
            }
        });
        (wall_deadline, ticket)
    }

    fn check_range(&self, page: PageNo) -> Result<()> {
        if page >= self.config.capacity_pages {
            Err(DeviceError::OutOfRange {
                page,
                capacity: self.config.capacity_pages,
            })
        } else {
            Ok(())
        }
    }
}

/// Zero-pads `data` to a full page.
fn full_page(data: &[u8]) -> Box<[u8]> {
    let mut buf = vec![0u8; PAGE_SIZE];
    buf[..data.len()].copy_from_slice(data);
    buf.into_boxed_slice()
}

/// A torn page: the first `keep` bytes of `fresh`, the rest from the
/// previous stable content (zeros if none). Empty payloads (payload storage
/// disabled) stay empty — the content is conceptually all-zero either way.
fn tear(fresh: &[u8], keep: usize, previous: Option<&[u8]>) -> Box<[u8]> {
    if fresh.is_empty() {
        return Box::from([] as [u8; 0]);
    }
    let mut buf = vec![0u8; PAGE_SIZE];
    match previous {
        Some(prev) if !prev.is_empty() => buf[..prev.len()].copy_from_slice(prev),
        _ => {}
    }
    let keep = keep.min(fresh.len());
    buf[..keep].copy_from_slice(&fresh[..keep]);
    buf.into_boxed_slice()
}

impl Device for SimDisk {
    fn read_page(&self, page: PageNo) -> Result<Vec<u8>> {
        self.submit_read(page).wait_read()
    }

    fn write_page(&self, page: PageNo, data: &[u8]) -> Result<()> {
        self.submit_write(page, data).wait()
    }

    fn flush(&self) -> Result<()> {
        self.submit_flush().wait()
    }

    /// All device effects happen here at submit, in submission order —
    /// validation, fault draws, counters, payload snapshot, latency
    /// scheduling. The completion only carries the outcome (errors included)
    /// and the operation's finish time; waiting on it never touches device
    /// state. That split is what lets pipelined callers overlap operations
    /// without perturbing the deterministic schedules single-threaded
    /// callers (the simulator) rely on.
    fn submit_read(&self, page: PageNo) -> Completion {
        if let Err(e) = self.check_range(page) {
            return Completion::ready_data(Err(e));
        }
        let content = {
            let store = self.store.lock();
            match store.visible(page) {
                Some(data) if !data.is_empty() => Some(data.to_vec()),
                // Payload storage disabled: serve a zero page.
                Some(_) => None,
                // Never written — or written only to the volatile cache and
                // then lost at a power cut, which reads the same way.
                None => {
                    return Completion::ready_data(Err(DeviceError::UnwrittenPage { page }));
                }
            }
        };
        {
            let mut fault = self.read_fault_after.lock();
            if let Some(remaining) = fault.as_mut() {
                if *remaining == 0 {
                    return Completion::ready_data(Err(DeviceError::InjectedFault { page }));
                }
                *remaining -= 1;
            }
        }
        {
            let mut faults = self.faults.lock();
            if let Some(state) = faults.as_mut() {
                if state.profile.read_fault > 0.0 && state.rng.gen_bool(state.profile.read_fault) {
                    return Completion::ready_data(Err(DeviceError::InjectedFault { page }));
                }
            }
        }
        let (deadline, ticket) = self.dispatch(page, PAGE_SIZE);
        self.stats.record_read(PAGE_SIZE as u64);
        let payload = content.unwrap_or_else(|| vec![0u8; PAGE_SIZE]);
        Completion::scheduled(Ok(Some(payload)), deadline, ticket)
    }

    fn submit_write(&self, page: PageNo, data: &[u8]) -> Completion {
        if let Err(e) = self.check_range(page) {
            return Completion::ready(Err(e));
        }
        if data.len() > PAGE_SIZE {
            return Completion::ready(Err(DeviceError::BadBufferLength { got: data.len() }));
        }
        {
            let mut fault = self.write_fault_after.lock();
            if let Some(remaining) = fault.as_mut() {
                if *remaining == 0 {
                    return Completion::ready(Err(DeviceError::InjectedFault { page }));
                }
                *remaining -= 1;
            }
        }
        {
            let mut faults = self.faults.lock();
            if let Some(state) = faults.as_mut() {
                if state.profile.write_fault > 0.0 && state.rng.gen_bool(state.profile.write_fault)
                {
                    // A failed write may still have touched media: with
                    // probability `torn_write` a sector prefix lands before
                    // the error surfaces. Write-anywhere allocation makes
                    // this safe for the engine (the target page holds no
                    // live data), but recovery must tolerate the debris.
                    if state.profile.torn_write > 0.0
                        && state.rng.gen_bool(state.profile.torn_write)
                    {
                        let keep = state.rng.gen_range(1..PAGE_SIZE / SECTOR_SIZE) * SECTOR_SIZE;
                        drop(faults);
                        let mut store = self.store.lock();
                        store.ever_written.insert(page);
                        if self.config.store_payloads {
                            let full = full_page(data);
                            let previous = store.visible(page).map(<[u8]>::to_vec);
                            let merged = tear(&full, keep, previous.as_deref());
                            if store.cache_enabled {
                                store.cache.insert(page, merged);
                            } else {
                                store.stable.insert(page, merged);
                            }
                        }
                    }
                    return Completion::ready(Err(DeviceError::InjectedFault { page }));
                }
            }
        }
        let (deadline, ticket) = self.dispatch(page, PAGE_SIZE);
        self.stats.record_write(PAGE_SIZE as u64);
        let mut store = self.store.lock();
        store.ever_written.insert(page);
        let payload = if self.config.store_payloads {
            full_page(data)
        } else {
            Box::from([] as [u8; 0])
        };
        if store.cache_enabled {
            store.cache.insert(page, payload);
        } else {
            store.stable.insert(page, payload);
        }
        drop(store);
        Completion::scheduled(Ok(None), deadline, ticket)
    }

    /// The barrier commits the volatile cache at submit (covering exactly
    /// the writes submitted before it, which have all mutated the store by
    /// then) and completes when every service slot drains, so waiting on it
    /// observes all prior operations' latency.
    fn submit_flush(&self) -> Completion {
        let mut store = self.store.lock();
        let cache = std::mem::take(&mut store.cache);
        store.stable.extend(cache);
        drop(store);
        self.stats.record_flush();
        let sched = self.sched.lock();
        let end_sim = sched
            .slots
            .iter()
            .map(|slot| slot.sim_end_ns)
            .max()
            .unwrap_or(0);
        let deadline = if self.emulate_latency.load(Ordering::Relaxed) {
            sched.slots.iter().filter_map(|slot| slot.wall_end).max()
        } else {
            None
        };
        drop(sched);
        let clock = self.clock.clone();
        Completion::scheduled(
            Ok(None),
            deadline,
            Box::new(move || {
                clock.advance_to(end_sim);
            }),
        )
    }

    fn queue_depth(&self) -> usize {
        self.config.queue_depth.max(1)
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn capacity_pages(&self) -> u64 {
        self.config.capacity_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DeviceConfig::free_latency())
    }

    #[test]
    fn write_then_read_roundtrips() {
        let d = disk();
        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 0xAB;
        data[PAGE_SIZE - 1] = 0xCD;
        d.write_page(5, &data).unwrap();
        let back = d.read_page(5).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn short_writes_are_zero_padded() {
        let d = disk();
        d.write_page(1, &[1, 2, 3]).unwrap();
        let back = d.read_page(1).unwrap();
        assert_eq!(&back[..3], &[1, 2, 3]);
        assert!(back[3..].iter().all(|&b| b == 0));
        assert_eq!(back.len(), PAGE_SIZE);
    }

    #[test]
    fn reading_unwritten_page_errors() {
        let d = disk();
        assert_eq!(
            d.read_page(9).unwrap_err(),
            DeviceError::UnwrittenPage { page: 9 }
        );
    }

    #[test]
    fn oversized_write_errors() {
        let d = disk();
        let big = vec![0u8; PAGE_SIZE + 1];
        assert_eq!(
            d.write_page(0, &big).unwrap_err(),
            DeviceError::BadBufferLength { got: PAGE_SIZE + 1 }
        );
    }

    #[test]
    fn out_of_range_errors() {
        let d = SimDisk::new(DeviceConfig::free_latency().with_capacity_pages(10));
        assert!(matches!(
            d.write_page(10, &[0]),
            Err(DeviceError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.read_page(11),
            Err(DeviceError::OutOfRange { .. })
        ));
    }

    #[test]
    fn counters_track_io() {
        let d = disk();
        d.write_page(0, &[0]).unwrap();
        d.write_page(1, &[0]).unwrap();
        d.read_page(0).unwrap();
        let s = d.stats().snapshot();
        assert_eq!(s.page_writes, 2);
        assert_eq!(s.page_reads, 1);
        assert_eq!(s.bytes_written, 2 * PAGE_SIZE as u64);
        assert_eq!(d.pages_written(), 2);
    }

    #[test]
    fn latency_advances_clock_and_counts_seeks() {
        let d = SimDisk::new(DeviceConfig::default());
        d.write_page(0, &[0]).unwrap();
        d.write_page(1, &[0]).unwrap(); // sequential: no seek
        d.write_page(1000, &[0]).unwrap(); // seek
        let s = d.stats().snapshot();
        assert_eq!(s.seeks, 2, "first access and the jump both seek");
        assert!(d.clock().now_ns() > 0);
        assert!(s.device_ns > 0);
    }

    #[test]
    fn payloads_can_be_disabled() {
        let d = SimDisk::new(DeviceConfig::free_latency().with_payloads(false));
        d.write_page(3, &[9, 9, 9]).unwrap();
        let back = d.read_page(3).unwrap();
        assert!(back.iter().all(|&b| b == 0));
        assert_eq!(d.stats().snapshot().page_writes, 1);
    }

    #[test]
    fn latency_emulation_blocks_the_calling_thread() {
        // 2 ms per random access is far above the scheduler's sleep
        // granularity, so the wall-clock difference is unambiguous.
        let model = LatencyModel {
            seek_ns: 2_000_000,
            ns_per_byte: 0.0,
            sequential_window: 1,
        };
        let d = SimDisk::new(DeviceConfig::free_latency().with_latency(model));
        let start = std::time::Instant::now();
        d.write_page(0, &[0]).unwrap();
        d.write_page(10_000, &[0]).unwrap();
        // Generous upper bound: two in-memory writes take microseconds, but
        // a loaded CI runner can preempt the thread mid-test.
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "without emulation the clock is simulated only"
        );
        d.set_latency_emulation(true);
        let start = std::time::Instant::now();
        d.write_page(20_000, &[0]).unwrap();
        d.write_page(40_000, &[0]).unwrap();
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(4),
            "two emulated random accesses must park for ~2 ms each"
        );
        d.set_latency_emulation(false);
    }

    #[test]
    fn overwrite_replaces_content() {
        let d = disk();
        d.write_page(2, &[1; 16]).unwrap();
        d.write_page(2, &[2; 16]).unwrap();
        assert_eq!(&d.read_page(2).unwrap()[..16], &[2; 16]);
        assert_eq!(d.pages_written(), 1);
    }

    #[test]
    fn read_fault_counter_fires_after_n_reads() {
        let d = disk();
        d.write_page(0, &[1]).unwrap();
        d.write_page(1, &[2]).unwrap();
        d.fail_reads_after(1);
        d.read_page(0).unwrap();
        assert_eq!(
            d.read_page(1).unwrap_err(),
            DeviceError::InjectedFault { page: 1 }
        );
        assert_eq!(
            d.read_page(0).unwrap_err(),
            DeviceError::InjectedFault { page: 0 }
        );
        d.clear_read_fault();
        assert_eq!(d.read_page(1).unwrap()[0], 2);
    }

    #[test]
    fn cached_writes_are_readable_but_lost_without_flush() {
        let d = disk();
        d.set_write_cache(true);
        d.write_page(7, &[7; 8]).unwrap();
        assert_eq!(&d.read_page(7).unwrap()[..8], &[7; 8]);
        assert_eq!(d.cached_pages(), 1);
        d.power_cut(&PowerCutProfile::lose_all(0));
        assert_eq!(d.cached_pages(), 0);
        assert!(matches!(
            d.read_page(7),
            Err(DeviceError::UnwrittenPage { .. })
        ));
        // The write still counts toward the footprint.
        assert_eq!(d.pages_written(), 1);
    }

    #[test]
    fn flush_commits_cache_across_power_cut() {
        let d = disk();
        d.set_write_cache(true);
        d.write_page(3, &[3; 4]).unwrap();
        d.flush().unwrap();
        d.write_page(4, &[4; 4]).unwrap();
        d.power_cut(&PowerCutProfile::lose_all(0));
        assert_eq!(&d.read_page(3).unwrap()[..4], &[3; 4]);
        assert!(d.read_page(4).is_err());
        assert_eq!(d.stats().snapshot().flushes, 1);
    }

    #[test]
    fn power_cut_loses_only_the_cached_version_of_an_overwritten_page() {
        let d = disk();
        d.set_write_cache(true);
        d.write_page(9, &[1; 4]).unwrap();
        d.flush().unwrap();
        d.write_page(9, &[2; 4]).unwrap();
        assert_eq!(&d.read_page(9).unwrap()[..4], &[2; 4], "cache is freshest");
        d.power_cut(&PowerCutProfile::lose_all(0));
        assert_eq!(
            &d.read_page(9).unwrap()[..4],
            &[1; 4],
            "page reverts to its last flushed content"
        );
    }

    #[test]
    fn torn_power_cut_persists_a_sector_prefix() {
        let d = disk();
        d.write_page(5, &[0xAA; PAGE_SIZE]).unwrap();
        d.flush().unwrap();
        d.set_write_cache(true);
        d.write_page(5, &[0xBB; PAGE_SIZE]).unwrap();
        let report = d.power_cut(&PowerCutProfile {
            seed: 1,
            persist: 0.0,
            torn: 1.0,
        });
        assert_eq!(
            report,
            PowerCutReport {
                persisted: 0,
                torn: 1,
                lost: 0
            }
        );
        let back = d.read_page(5).unwrap();
        let boundary = back.iter().position(|&b| b == 0xAA).unwrap();
        assert_eq!(boundary % SECTOR_SIZE, 0, "tear is sector-aligned");
        assert!(boundary > 0, "at least one sector of the new write landed");
        assert!(back[..boundary].iter().all(|&b| b == 0xBB));
        assert!(back[boundary..].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn power_cut_fates_are_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let d = disk();
            d.set_write_cache(true);
            for page in 0..64u64 {
                d.write_page(page, &[page as u8; 32]).unwrap();
            }
            let report = d.power_cut(&PowerCutProfile {
                seed,
                persist: 0.4,
                torn: 0.3,
            });
            (report, d.content_digest())
        };
        assert_eq!(run(11), run(11));
        let (report, _) = run(11);
        assert_eq!(report.total(), 64);
        assert!(report.persisted > 0 && report.torn > 0 && report.lost > 0);
        assert_ne!(run(11).1, run(12).1, "different seeds cut differently");
    }

    #[test]
    fn tear_page_merges_prefix_over_previous_stable_content() {
        let d = disk();
        d.write_page(2, &[0x11; PAGE_SIZE]).unwrap();
        d.tear_page(2, &[0x22; PAGE_SIZE], 100).unwrap();
        let back = d.read_page(2).unwrap();
        assert!(back[..100].iter().all(|&b| b == 0x22));
        assert!(back[100..].iter().all(|&b| b == 0x11));
        // Tearing an unwritten page leaves zeros past the prefix.
        d.tear_page(40, &[0x33; 64], 16).unwrap();
        let back = d.read_page(40).unwrap();
        assert!(back[..16].iter().all(|&b| b == 0x33));
        assert!(back[16..].iter().all(|&b| b == 0));
    }

    #[test]
    fn fault_profile_schedule_replays_from_its_seed() {
        let run = || {
            let d = disk();
            d.set_fault_profile(Some(FaultProfile {
                seed: 99,
                read_fault: 0.1,
                write_fault: 0.2,
                torn_write: 0.5,
            }));
            let mut writes = Vec::new();
            let mut reads = Vec::new();
            for i in 0..200u64 {
                writes.push(d.write_page(i % 32, &[i as u8; 16]).is_ok());
                reads.push(d.read_page(i % 32).map(|p| p[0]).ok());
            }
            (writes, reads, d.content_digest(), d.stats().snapshot())
        };
        let (a_w, a_r, a_digest, a_stats) = run();
        let (b_w, b_r, b_digest, b_stats) = run();
        assert_eq!(a_w, b_w);
        assert_eq!(a_r, b_r);
        assert_eq!(a_digest, b_digest);
        assert_eq!(a_stats, b_stats);
        assert!(a_w.iter().any(|&ok| !ok), "write faults fired");
        assert!(a_r.iter().any(Option::is_none), "read faults fired");
    }

    #[test]
    fn pipelined_submits_overlap_simulated_time() {
        // Four random 4 ms accesses: serialized they cost ~16 ms of
        // simulated time, pipelined at depth 4 they cost ~4 ms.
        let submit_four = |depth: usize| {
            let d = SimDisk::new(DeviceConfig::default().with_queue_depth(depth));
            let completions: Vec<_> = (0..4).map(|i| d.submit_write(i * 100_000, &[1])).collect();
            for c in &completions {
                c.wait().unwrap();
            }
            (d.clock().now_ns(), d.stats().snapshot())
        };
        let (serial_ns, serial_stats) = submit_four(1);
        let (deep_ns, deep_stats) = submit_four(4);
        assert_eq!(
            serial_stats.device_ns, deep_stats.device_ns,
            "busy time is depth-independent"
        );
        assert!(
            deep_ns * 3 < serial_ns,
            "depth 4 must overlap: {deep_ns} ns vs {serial_ns} ns at depth 1"
        );
        assert_eq!(deep_stats.max_in_flight, 4);
        assert!(deep_stats.completed_async_ops >= 3);
        assert_eq!(
            serial_stats.max_in_flight, 4,
            "depth 1 still queues submits"
        );
        assert_eq!(serial_stats.page_writes, deep_stats.page_writes);
    }

    #[test]
    fn sync_shims_never_report_overlap() {
        let d = SimDisk::new(DeviceConfig::default());
        for i in 0..8u64 {
            d.write_page(i * 50_000, &[1]).unwrap();
        }
        d.read_page(0).unwrap();
        let s = d.stats().snapshot();
        assert_eq!(s.max_in_flight, 1, "submit-then-wait keeps depth at 1");
        assert_eq!(s.completed_async_ops, 0);
    }

    #[test]
    fn emulated_latency_overlaps_across_the_queue() {
        // 2 ms per random access, depth 8: eight pipelined accesses must
        // finish in well under the 16 ms a serial device would take.
        let model = LatencyModel {
            seek_ns: 2_000_000,
            ns_per_byte: 0.0,
            sequential_window: 1,
        };
        let d = SimDisk::new(
            DeviceConfig::free_latency()
                .with_latency(model)
                .with_queue_depth(8),
        );
        d.set_latency_emulation(true);
        let start = std::time::Instant::now();
        let completions: Vec<_> = (0..8).map(|i| d.submit_write(i * 100_000, &[1])).collect();
        for c in &completions {
            c.wait().unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= std::time::Duration::from_millis(2),
            "the slowest operation's latency is still paid"
        );
        assert!(
            elapsed < std::time::Duration::from_millis(12),
            "waits overlap: {elapsed:?} for 8 × 2 ms at depth 8"
        );
    }

    #[test]
    fn submit_error_is_delivered_at_the_completion() {
        let d = disk();
        d.fail_writes_after(1);
        let ok = d.submit_write(0, &[1]);
        let bad = d.submit_write(1, &[2]);
        // Both submits returned handles; only the wait reveals the fault.
        ok.wait().unwrap();
        assert_eq!(
            bad.wait().unwrap_err(),
            DeviceError::InjectedFault { page: 1 }
        );
        d.clear_write_fault();
        // The failed write never touched media or counters.
        assert!(matches!(
            d.read_page(1),
            Err(DeviceError::UnwrittenPage { .. })
        ));
        assert_eq!(d.stats().snapshot().page_writes, 1);
    }

    #[test]
    fn abandoned_completions_retire_their_accounting() {
        let d = SimDisk::new(DeviceConfig::default().with_queue_depth(4));
        let completions: Vec<_> = (0..4).map(|i| d.submit_write(i * 100_000, &[1])).collect();
        drop(completions); // an aborted pipeline waits on nothing
        assert_eq!(d.in_flight.load(Ordering::Relaxed), 0);
        assert!(d.clock().now_ns() > 0, "dropped tickets still advance time");
        d.write_page(0, &[2]).unwrap();
        assert_eq!(d.read_page(0).unwrap()[0], 2);
    }

    #[test]
    fn latency_jitter_replays_from_its_seed() {
        let run = |seed: u64| {
            let d = disk();
            d.set_latency_jitter(Some(LatencyJitter {
                seed,
                min_ns: 1_000,
                max_ns: 50_000,
            }));
            for i in 0..64u64 {
                d.write_page(i * 13 % 40, &[i as u8]).unwrap();
            }
            (d.stats().snapshot(), d.clock().now_ns())
        };
        assert_eq!(run(5), run(5), "same seed, same schedule");
        let ((a_stats, _), (b_stats, _)) = (run(5), run(6));
        assert_ne!(
            a_stats.device_ns, b_stats.device_ns,
            "different seeds draw different schedules"
        );
        assert!(
            a_stats.device_ns >= 64_000,
            "jitter charges at least min_ns"
        );
    }

    #[test]
    fn flush_completion_drains_the_queue() {
        let d = SimDisk::new(DeviceConfig::default().with_queue_depth(4));
        d.set_write_cache(true);
        let writes: Vec<_> = (0..4).map(|i| d.submit_write(i * 100_000, &[1])).collect();
        let barrier = d.submit_flush();
        assert_eq!(d.cached_pages(), 0, "barrier covers prior submits");
        barrier.wait().unwrap();
        let drained = d.clock().now_ns();
        assert!(drained > 0, "barrier waits out every service slot");
        for w in &writes {
            w.wait().unwrap();
        }
        assert_eq!(
            d.clock().now_ns(),
            drained,
            "writes ended under the barrier"
        );
    }

    #[test]
    fn disabling_write_cache_flushes_it() {
        let d = disk();
        d.set_write_cache(true);
        d.write_page(1, &[1]).unwrap();
        d.set_write_cache(false);
        assert_eq!(d.cached_pages(), 0);
        d.power_cut(&PowerCutProfile::lose_all(0));
        assert_eq!(d.read_page(1).unwrap()[0], 1);
    }
}
