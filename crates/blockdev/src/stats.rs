use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use obs::{spans, Clock, FlightRecorder, Histogram, HistogramSnapshot};

/// Lock id tagging [`LOCK_WAIT`](spans::LOCK_WAIT) marks from the file
/// store's allocation lock.
pub const LOCK_ID_FILE_STORE: u64 = 1;
/// Lock id tagging [`LOCK_WAIT`](spans::LOCK_WAIT) marks from LSM write
/// buffer shards.
pub const LOCK_ID_WRITE_SHARD: u64 = 2;

/// Observability hooks an engine installs on a device's stats (at most
/// once): contended lock acquisitions are marked in the flight recorder
/// and their waits measured on the engine's observability clock.
#[derive(Debug)]
struct StatsObs {
    recorder: Arc<FlightRecorder>,
    clock: Arc<dyn Clock>,
}

/// Atomic I/O counters attached to a device.
///
/// Counters are monotonically increasing; experiments take a
/// [`snapshot`](IoStats::snapshot) before and after a phase and subtract the
/// two with [`IoStatsSnapshot::delta_since`] to attribute cost to that phase.
/// Alongside the scalar counters the stats keep two lock-free latency
/// histograms: per-operation modeled device service time (the
/// submit-to-complete gap the scalar `device_ns` only sums) and
/// contended-lock wait time.
#[derive(Debug, Default)]
pub struct IoStats {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    seeks: AtomicU64,
    /// Write barriers ([`Device::flush`](crate::Device::flush)) issued.
    flushes: AtomicU64,
    /// Simulated device busy time, nanoseconds.
    device_ns: AtomicU64,
    /// Times a thread found the owning layer's state lock already held and
    /// had to wait (e.g. concurrent rebuilds contending on the file store's
    /// allocation lock).
    lock_contentions: AtomicU64,
    /// High-water mark of simultaneously outstanding submitted operations
    /// (submitted but not yet waited). Stays at 1 when every caller uses the
    /// sync shims; benchmarks assert it exceeds 1 to prove the async paths
    /// really pipelined.
    max_in_flight: AtomicU64,
    /// Operations that completed while at least one other operation was in
    /// flight — i.e. the I/O that actually overlapped.
    completed_async_ops: AtomicU64,
    /// Device round-trips avoided by batched cache reads
    /// ([`PageCache::read_pages`](crate::PageCache::read_pages)): a batch of
    /// `n` misses submitted in one round saves `n - 1` serial trips.
    batched_reads_saved: AtomicU64,
    /// Distribution of per-operation modeled service times (every sample
    /// also lands in the `device_ns` sum).
    service_ns_hist: Histogram,
    /// Distribution of contended-lock wait times, in observability-clock
    /// units (empty until [`attach_obs`](IoStats::attach_obs) supplies a
    /// clock).
    lock_wait_ns_hist: Histogram,
    /// Engine-installed trace hooks (absent for bare devices in tests).
    obs: OnceLock<StatsObs>,
}

impl IoStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a page read of `bytes` bytes.
    pub fn record_read(&self, bytes: u64) {
        self.page_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a page write of `bytes` bytes.
    pub fn record_write(&self, bytes: u64) {
        self.page_writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a head seek (non-sequential access).
    pub fn record_seek(&self) {
        self.seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a write barrier (flush).
    pub fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.recorder.mark(spans::DEV_FLUSH, 0, 0);
        }
    }

    /// Adds simulated device busy time in nanoseconds. The sample also
    /// lands in the per-operation service-time histogram.
    pub fn record_device_ns(&self, ns: u64) {
        self.device_ns.fetch_add(ns, Ordering::Relaxed);
        self.service_ns_hist.record(ns);
    }

    /// Records one contended acquisition of a state lock (the acquiring
    /// thread found the lock held and blocked).
    pub fn record_lock_contention(&self) {
        self.lock_contentions.fetch_add(1, Ordering::Relaxed);
    }

    /// Installs trace hooks; first caller wins when several engines share
    /// the same device.
    pub fn attach_obs(&self, recorder: Arc<FlightRecorder>, clock: Arc<dyn Clock>) {
        let _ = self.obs.set(StatsObs { recorder, clock });
    }

    /// Reads the attached observability clock, or 0 when no engine has
    /// attached hooks yet (bare devices in tests).
    pub fn obs_now(&self) -> u64 {
        self.obs.get().map_or(0, |o| o.clock.now_ns())
    }

    /// Records a contended-lock wait of `ns` observability-clock units,
    /// tagged with a caller-chosen lock id in the flight recorder.
    pub fn record_lock_wait(&self, lock_id: u64, ns: u64) {
        self.lock_wait_ns_hist.record(ns);
        if let Some(o) = self.obs.get() {
            o.recorder.mark(spans::LOCK_WAIT, lock_id, ns);
        }
    }

    /// Snapshot of the per-operation device service-time histogram.
    pub fn service_ns(&self) -> HistogramSnapshot {
        self.service_ns_hist.snapshot()
    }

    /// Snapshot of the contended-lock wait-time histogram.
    pub fn lock_wait_ns(&self) -> HistogramSnapshot {
        self.lock_wait_ns_hist.snapshot()
    }

    /// Raises the in-flight high-water mark to at least `in_flight`.
    pub fn record_in_flight(&self, in_flight: u64) {
        self.max_in_flight.fetch_max(in_flight, Ordering::Relaxed);
    }

    /// Records the completion of an operation that overlapped with at least
    /// one other in-flight operation.
    pub fn record_async_complete(&self) {
        self.completed_async_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `trips` device round-trips saved by batching reads.
    pub fn record_batched_saved(&self, trips: u64) {
        self.batched_reads_saved.fetch_add(trips, Ordering::Relaxed);
    }

    /// Returns a point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_writes: self.page_writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            device_ns: self.device_ns.load(Ordering::Relaxed),
            lock_contentions: self.lock_contentions.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
            completed_async_ops: self.completed_async_ops.load(Ordering::Relaxed),
            batched_reads_saved: self.batched_reads_saved.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    ///
    /// Prefer snapshot/delta over reset when multiple observers share the
    /// same device; reset is provided for single-owner tests.
    pub fn reset(&self) {
        self.page_reads.store(0, Ordering::Relaxed);
        self.page_writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.device_ns.store(0, Ordering::Relaxed);
        self.lock_contentions.store(0, Ordering::Relaxed);
        self.max_in_flight.store(0, Ordering::Relaxed);
        self.completed_async_ops.store(0, Ordering::Relaxed);
        self.batched_reads_saved.store(0, Ordering::Relaxed);
        self.service_ns_hist.clear();
        self.lock_wait_ns_hist.clear();
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Number of page reads issued to the device.
    pub page_reads: u64,
    /// Number of page writes issued to the device.
    pub page_writes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of non-sequential accesses (head seeks).
    pub seeks: u64,
    /// Number of write barriers (flushes) issued.
    pub flushes: u64,
    /// Simulated device busy time in nanoseconds.
    pub device_ns: u64,
    /// Contended state-lock acquisitions (see
    /// [`IoStats::record_lock_contention`]).
    pub lock_contentions: u64,
    /// High-water mark of simultaneously in-flight submitted operations.
    /// A high-water mark, not a monotone count: compare snapshots directly
    /// rather than through [`delta_since`](IoStatsSnapshot::delta_since).
    pub max_in_flight: u64,
    /// Operations that completed while other operations were in flight.
    pub completed_async_ops: u64,
    /// Device round-trips avoided by batched cache reads.
    pub batched_reads_saved: u64,
}

impl IoStatsSnapshot {
    /// Returns the difference `self - earlier`, saturating at zero.
    ///
    /// Counters are monotone, so a saturating subtraction only matters if the
    /// caller mixes snapshots from different devices.
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            device_ns: self.device_ns.saturating_sub(earlier.device_ns),
            lock_contentions: self
                .lock_contentions
                .saturating_sub(earlier.lock_contentions),
            // The high-water mark is not a monotone counter; the delta keeps
            // the later snapshot's value so phase reports still show the peak.
            max_in_flight: self.max_in_flight,
            completed_async_ops: self
                .completed_async_ops
                .saturating_sub(earlier.completed_async_ops),
            batched_reads_saved: self
                .batched_reads_saved
                .saturating_sub(earlier.batched_reads_saved),
        }
    }

    /// Total number of page I/Os (reads plus writes).
    pub fn total_ios(&self) -> u64 {
        self.page_reads + self.page_writes
    }

    /// Simulated device busy time in microseconds.
    pub fn device_micros(&self) -> f64 {
        self.device_ns as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let stats = IoStats::new();
        stats.record_read(4096);
        stats.record_write(4096);
        stats.record_write(4096);
        stats.record_seek();
        stats.record_device_ns(1500);
        stats.record_lock_contention();
        let s = stats.snapshot();
        assert_eq!(s.page_reads, 1);
        assert_eq!(s.page_writes, 2);
        assert_eq!(s.bytes_read, 4096);
        assert_eq!(s.bytes_written, 8192);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.device_ns, 1500);
        assert_eq!(s.lock_contentions, 1);
        assert_eq!(s.total_ios(), 3);
    }

    #[test]
    fn delta_subtracts() {
        let stats = IoStats::new();
        stats.record_write(4096);
        let before = stats.snapshot();
        stats.record_write(4096);
        stats.record_read(4096);
        let after = stats.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.page_writes, 1);
        assert_eq!(d.page_reads, 1);
    }

    #[test]
    fn delta_saturates() {
        let a = IoStatsSnapshot {
            page_reads: 1,
            ..Default::default()
        };
        let b = IoStatsSnapshot {
            page_reads: 5,
            ..Default::default()
        };
        assert_eq!(a.delta_since(&b).page_reads, 0);
    }

    #[test]
    fn reset_zeroes() {
        let stats = IoStats::new();
        stats.record_read(4096);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn async_counters_accumulate_and_reset() {
        let stats = IoStats::new();
        stats.record_in_flight(3);
        stats.record_in_flight(7);
        stats.record_in_flight(2);
        stats.record_async_complete();
        stats.record_async_complete();
        stats.record_batched_saved(4);
        let s = stats.snapshot();
        assert_eq!(s.max_in_flight, 7, "high-water mark keeps the peak");
        assert_eq!(s.completed_async_ops, 2);
        assert_eq!(s.batched_reads_saved, 4);
        let later = stats.snapshot();
        assert_eq!(later.delta_since(&s).max_in_flight, 7);
        assert_eq!(later.delta_since(&s).completed_async_ops, 0);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn micros_conversion() {
        let s = IoStatsSnapshot {
            device_ns: 2_500,
            ..Default::default()
        };
        assert!((s.device_micros() - 2.5).abs() < 1e-9);
    }
}
