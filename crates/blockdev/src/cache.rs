use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::completion::Completion;
use crate::device::Device;
use crate::error::Result;
use crate::latency::SimClock;
use crate::stats::IoStats;
use crate::{PageNo, PAGE_SIZE};

/// An LRU page cache layered on top of another [`Device`].
///
/// Reads that hit the cache cost nothing at the underlying device (no counter
/// increments, no simulated latency); misses are forwarded and inserted.
/// Writes are write-through: they update the cache *and* the device, which
/// matches the paper's setup where the back-reference database is always made
/// durable at a consistency point.
///
/// The paper's micro-benchmarks used a 32 MB cache in addition to the write
/// stores and Bloom filters; [`PageCache::with_capacity_bytes`] reproduces
/// that configuration.
#[derive(Debug)]
pub struct PageCache {
    inner: Arc<dyn Device>,
    capacity_pages: usize,
    state: Mutex<LruState>,
    hits: IoStats,
}

#[derive(Debug, Default)]
struct LruState {
    map: HashMap<PageNo, (u64, Vec<u8>)>,
    tick: u64,
}

impl PageCache {
    /// Creates a cache holding at most `capacity_pages` pages.
    pub fn new(inner: Arc<dyn Device>, capacity_pages: usize) -> Self {
        PageCache {
            inner,
            capacity_pages: capacity_pages.max(1),
            state: Mutex::new(LruState::default()),
            hits: IoStats::new(),
        }
    }

    /// Creates a cache with a capacity expressed in bytes (rounded down to
    /// whole pages, minimum one page).
    pub fn with_capacity_bytes(inner: Arc<dyn Device>, bytes: usize) -> Self {
        Self::new(inner, bytes / PAGE_SIZE)
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the cache currently holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters for accesses satisfied by the cache (recorded as reads).
    pub fn hit_stats(&self) -> &IoStats {
        &self.hits
    }

    /// Drops all cached pages, as the paper does before each query benchmark
    /// ("we cleared both our internal caches and all file system caches").
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.map.clear();
    }

    /// The wrapped device.
    pub fn inner(&self) -> &Arc<dyn Device> {
        &self.inner
    }

    /// Reads a batch of pages, answering hits from the cache and submitting
    /// **all** misses in one round before waiting on any of them — so a
    /// batch of `n` misses costs one overlapped round-trip instead of `n`
    /// serial ones on a queue-depth-capable device. Results come back in
    /// request order; every miss is inserted into the cache. The round-trips
    /// saved (`misses - 1` when at least two pages miss) are counted in
    /// [`hit_stats`](PageCache::hit_stats) as `batched_reads_saved`.
    ///
    /// # Errors
    ///
    /// The first failing page's error; remaining in-flight reads are
    /// abandoned (their device accounting still retires).
    pub fn read_pages(&self, pages: &[PageNo]) -> Result<Vec<Vec<u8>>> {
        let mut results: Vec<Option<Vec<u8>>> = vec![None; pages.len()];
        let mut misses: Vec<(usize, PageNo, Completion)> = Vec::new();
        for (i, &page) in pages.iter().enumerate() {
            let hit = {
                let mut st = self.state.lock();
                st.tick += 1;
                let tick = st.tick;
                st.map.get_mut(&page).map(|entry| {
                    entry.0 = tick;
                    entry.1.clone()
                })
            };
            match hit {
                Some(data) => {
                    self.hits.record_read(PAGE_SIZE as u64);
                    results[i] = Some(data);
                }
                None => misses.push((i, page, self.inner.submit_read(page))),
            }
        }
        if misses.len() >= 2 {
            self.hits.record_batched_saved(misses.len() as u64 - 1);
        }
        for (i, page, completion) in misses {
            let data = completion.wait_read()?;
            self.insert(page, data.clone());
            results[i] = Some(data);
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every request is a hit or a waited miss"))
            .collect())
    }

    fn insert(&self, page: PageNo, data: Vec<u8>) {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        st.map.insert(page, (tick, data));
        if st.map.len() > self.capacity_pages {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = st.map.iter().min_by_key(|(_, (t, _))| *t) {
                st.map.remove(&victim);
            }
        }
    }
}

impl Device for PageCache {
    fn read_page(&self, page: PageNo) -> Result<Vec<u8>> {
        {
            let mut st = self.state.lock();
            st.tick += 1;
            let tick = st.tick;
            if let Some(entry) = st.map.get_mut(&page) {
                entry.0 = tick;
                self.hits.record_read(PAGE_SIZE as u64);
                return Ok(entry.1.clone());
            }
        }
        let data = self.inner.read_page(page)?;
        self.insert(page, data.clone());
        Ok(data)
    }

    fn write_page(&self, page: PageNo, data: &[u8]) -> Result<()> {
        self.inner.write_page(page, data)?;
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[..data.len()].copy_from_slice(data);
        self.insert(page, buf);
        Ok(())
    }

    /// Hits resolve immediately; misses forward to the wrapped device
    /// *without* populating the cache — the payload lives in the completion,
    /// and inserting it would mean waiting here, defeating the submit. Batch
    /// readers that want miss insertion use
    /// [`read_pages`](PageCache::read_pages).
    fn submit_read(&self, page: PageNo) -> Completion {
        let hit = {
            let mut st = self.state.lock();
            st.tick += 1;
            let tick = st.tick;
            st.map.get_mut(&page).map(|entry| {
                entry.0 = tick;
                entry.1.clone()
            })
        };
        match hit {
            Some(data) => {
                self.hits.record_read(PAGE_SIZE as u64);
                Completion::ready_data(Ok(data))
            }
            None => self.inner.submit_read(page),
        }
    }

    // `submit_write` deliberately stays the sync default (write-through via
    // `write_page`): the cache may only be populated after the device
    // accepts the write, otherwise a failed write would leave the cache
    // serving data the device rejected.

    fn flush(&self) -> Result<()> {
        // The read cache holds no dirty data (writes are write-through), so
        // a barrier only needs to reach the underlying device. Relying on
        // the trait default here would silently drop the barrier.
        self.inner.flush()
    }

    fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn clock(&self) -> &SimClock {
        self.inner.clock()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceConfig, SimDisk};

    fn setup(cache_pages: usize) -> (Arc<SimDisk>, PageCache) {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let cache = PageCache::new(disk.clone(), cache_pages);
        (disk, cache)
    }

    #[test]
    fn cached_read_does_not_touch_device() {
        let (disk, cache) = setup(8);
        cache.write_page(1, &[7; 8]).unwrap();
        let before = disk.stats().snapshot();
        let data = cache.read_page(1).unwrap();
        assert_eq!(&data[..8], &[7; 8]);
        let after = disk.stats().snapshot();
        assert_eq!(
            after.page_reads, before.page_reads,
            "read served from cache"
        );
        assert_eq!(cache.hit_stats().snapshot().page_reads, 1);
    }

    #[test]
    fn miss_goes_to_device_and_populates_cache() {
        let (disk, cache) = setup(8);
        disk.write_page(2, &[3; 4]).unwrap();
        assert!(cache.is_empty());
        cache.read_page(2).unwrap();
        assert_eq!(disk.stats().snapshot().page_reads, 1);
        cache.read_page(2).unwrap();
        assert_eq!(
            disk.stats().snapshot().page_reads,
            1,
            "second read is a hit"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_respects_capacity_and_lru_order() {
        let (disk, cache) = setup(2);
        cache.write_page(1, &[1]).unwrap();
        cache.write_page(2, &[2]).unwrap();
        // Touch page 1 so page 2 becomes the LRU victim.
        cache.read_page(1).unwrap();
        cache.write_page(3, &[3]).unwrap();
        assert_eq!(cache.len(), 2);
        let before = disk.stats().snapshot();
        cache.read_page(2).unwrap(); // must miss
        assert_eq!(disk.stats().snapshot().page_reads, before.page_reads + 1);
    }

    #[test]
    fn clear_empties_cache() {
        let (disk, cache) = setup(4);
        cache.write_page(1, &[1]).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        cache.read_page(1).unwrap();
        assert_eq!(disk.stats().snapshot().page_reads, 1);
    }

    #[test]
    fn capacity_bytes_rounds_to_pages() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let cache = PageCache::with_capacity_bytes(disk, 10 * PAGE_SIZE + 100);
        assert_eq!(cache.capacity_pages, 10);
    }

    #[test]
    fn read_pages_batches_misses_in_one_round() {
        let (disk, cache) = setup(8);
        for page in 0..6u64 {
            disk.write_page(page, &[page as u8]).unwrap();
        }
        cache.read_page(1).unwrap(); // pre-warm one hit
        let before = disk.stats().snapshot();
        let pages = [0u64, 1, 2, 3];
        let data = cache.read_pages(&pages).unwrap();
        for (i, &page) in pages.iter().enumerate() {
            assert_eq!(data[i][0], page as u8, "results in request order");
        }
        let after = disk.stats().snapshot();
        assert_eq!(after.page_reads - before.page_reads, 3, "one hit, 3 misses");
        assert_eq!(
            cache.hit_stats().snapshot().batched_reads_saved,
            2,
            "3 misses in one round save 2 serial trips"
        );
        // The misses were inserted: a re-read is all hits, no new savings.
        let before = disk.stats().snapshot();
        cache.read_pages(&pages).unwrap();
        assert_eq!(disk.stats().snapshot().page_reads, before.page_reads);
        assert_eq!(cache.hit_stats().snapshot().batched_reads_saved, 2);
    }

    #[test]
    fn read_pages_propagates_the_first_error() {
        let (disk, cache) = setup(8);
        disk.write_page(0, &[1]).unwrap();
        disk.write_page(1, &[2]).unwrap();
        disk.fail_reads_after(1);
        let err = cache.read_pages(&[0, 1]).unwrap_err();
        assert!(matches!(err, crate::DeviceError::InjectedFault { .. }));
        disk.clear_read_fault();
    }

    #[test]
    fn submit_read_hits_skip_the_device() {
        let (disk, cache) = setup(8);
        cache.write_page(4, &[9; 4]).unwrap();
        let before = disk.stats().snapshot();
        let c = cache.submit_read(4);
        assert_eq!(&c.wait_read().unwrap()[..4], &[9; 4]);
        assert_eq!(disk.stats().snapshot().page_reads, before.page_reads);
        // A miss forwards without inserting.
        disk.write_page(5, &[5]).unwrap();
        cache.submit_read(5).wait_read().unwrap();
        assert_eq!(disk.stats().snapshot().page_reads, before.page_reads + 1);
        cache.read_page(5).unwrap();
        assert_eq!(
            disk.stats().snapshot().page_reads,
            before.page_reads + 2,
            "submit_read misses do not populate the cache"
        );
    }

    #[test]
    fn writes_are_write_through() {
        let (disk, cache) = setup(4);
        cache.write_page(7, &[9; 3]).unwrap();
        assert_eq!(disk.stats().snapshot().page_writes, 1);
        assert_eq!(&disk.read_page(7).unwrap()[..3], &[9; 3]);
    }
}
