use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::device::Device;
use crate::error::Result;
use crate::latency::SimClock;
use crate::stats::IoStats;
use crate::{PageNo, PAGE_SIZE};

/// An LRU page cache layered on top of another [`Device`].
///
/// Reads that hit the cache cost nothing at the underlying device (no counter
/// increments, no simulated latency); misses are forwarded and inserted.
/// Writes are write-through: they update the cache *and* the device, which
/// matches the paper's setup where the back-reference database is always made
/// durable at a consistency point.
///
/// The paper's micro-benchmarks used a 32 MB cache in addition to the write
/// stores and Bloom filters; [`PageCache::with_capacity_bytes`] reproduces
/// that configuration.
#[derive(Debug)]
pub struct PageCache {
    inner: Arc<dyn Device>,
    capacity_pages: usize,
    state: Mutex<LruState>,
    hits: IoStats,
}

#[derive(Debug, Default)]
struct LruState {
    map: HashMap<PageNo, (u64, Vec<u8>)>,
    tick: u64,
}

impl PageCache {
    /// Creates a cache holding at most `capacity_pages` pages.
    pub fn new(inner: Arc<dyn Device>, capacity_pages: usize) -> Self {
        PageCache {
            inner,
            capacity_pages: capacity_pages.max(1),
            state: Mutex::new(LruState::default()),
            hits: IoStats::new(),
        }
    }

    /// Creates a cache with a capacity expressed in bytes (rounded down to
    /// whole pages, minimum one page).
    pub fn with_capacity_bytes(inner: Arc<dyn Device>, bytes: usize) -> Self {
        Self::new(inner, bytes / PAGE_SIZE)
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the cache currently holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters for accesses satisfied by the cache (recorded as reads).
    pub fn hit_stats(&self) -> &IoStats {
        &self.hits
    }

    /// Drops all cached pages, as the paper does before each query benchmark
    /// ("we cleared both our internal caches and all file system caches").
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.map.clear();
    }

    /// The wrapped device.
    pub fn inner(&self) -> &Arc<dyn Device> {
        &self.inner
    }

    fn insert(&self, page: PageNo, data: Vec<u8>) {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        st.map.insert(page, (tick, data));
        if st.map.len() > self.capacity_pages {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = st.map.iter().min_by_key(|(_, (t, _))| *t) {
                st.map.remove(&victim);
            }
        }
    }
}

impl Device for PageCache {
    fn read_page(&self, page: PageNo) -> Result<Vec<u8>> {
        {
            let mut st = self.state.lock();
            st.tick += 1;
            let tick = st.tick;
            if let Some(entry) = st.map.get_mut(&page) {
                entry.0 = tick;
                self.hits.record_read(PAGE_SIZE as u64);
                return Ok(entry.1.clone());
            }
        }
        let data = self.inner.read_page(page)?;
        self.insert(page, data.clone());
        Ok(data)
    }

    fn write_page(&self, page: PageNo, data: &[u8]) -> Result<()> {
        self.inner.write_page(page, data)?;
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[..data.len()].copy_from_slice(data);
        self.insert(page, buf);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        // The read cache holds no dirty data (writes are write-through), so
        // a barrier only needs to reach the underlying device. Relying on
        // the trait default here would silently drop the barrier.
        self.inner.flush()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn clock(&self) -> &SimClock {
        self.inner.clock()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceConfig, SimDisk};

    fn setup(cache_pages: usize) -> (Arc<SimDisk>, PageCache) {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let cache = PageCache::new(disk.clone(), cache_pages);
        (disk, cache)
    }

    #[test]
    fn cached_read_does_not_touch_device() {
        let (disk, cache) = setup(8);
        cache.write_page(1, &[7; 8]).unwrap();
        let before = disk.stats().snapshot();
        let data = cache.read_page(1).unwrap();
        assert_eq!(&data[..8], &[7; 8]);
        let after = disk.stats().snapshot();
        assert_eq!(
            after.page_reads, before.page_reads,
            "read served from cache"
        );
        assert_eq!(cache.hit_stats().snapshot().page_reads, 1);
    }

    #[test]
    fn miss_goes_to_device_and_populates_cache() {
        let (disk, cache) = setup(8);
        disk.write_page(2, &[3; 4]).unwrap();
        assert!(cache.is_empty());
        cache.read_page(2).unwrap();
        assert_eq!(disk.stats().snapshot().page_reads, 1);
        cache.read_page(2).unwrap();
        assert_eq!(
            disk.stats().snapshot().page_reads,
            1,
            "second read is a hit"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_respects_capacity_and_lru_order() {
        let (disk, cache) = setup(2);
        cache.write_page(1, &[1]).unwrap();
        cache.write_page(2, &[2]).unwrap();
        // Touch page 1 so page 2 becomes the LRU victim.
        cache.read_page(1).unwrap();
        cache.write_page(3, &[3]).unwrap();
        assert_eq!(cache.len(), 2);
        let before = disk.stats().snapshot();
        cache.read_page(2).unwrap(); // must miss
        assert_eq!(disk.stats().snapshot().page_reads, before.page_reads + 1);
    }

    #[test]
    fn clear_empties_cache() {
        let (disk, cache) = setup(4);
        cache.write_page(1, &[1]).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        cache.read_page(1).unwrap();
        assert_eq!(disk.stats().snapshot().page_reads, 1);
    }

    #[test]
    fn capacity_bytes_rounds_to_pages() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let cache = PageCache::with_capacity_bytes(disk, 10 * PAGE_SIZE + 100);
        assert_eq!(cache.capacity_pages, 10);
    }

    #[test]
    fn writes_are_write_through() {
        let (disk, cache) = setup(4);
        cache.write_page(7, &[9; 3]).unwrap();
        assert_eq!(disk.stats().snapshot().page_writes, 1);
        assert_eq!(&disk.read_page(7).unwrap()[..3], &[9; 3]);
    }
}
