use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::device::Device;
use crate::error::{DeviceError, Result};
use crate::{PageNo, PAGE_SIZE};

/// Identifier of a virtual file inside a [`FileStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vfile#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct FileMeta {
    /// Extents of contiguous device pages, in file order.
    extents: Vec<(PageNo, u64)>,
    /// Length in pages.
    len_pages: u64,
    /// Logical length in bytes (may not fill the last page).
    len_bytes: u64,
}

impl FileMeta {
    fn page_at(&self, offset: u64) -> Option<PageNo> {
        let mut remaining = offset;
        for &(start, len) in &self.extents {
            if remaining < len {
                return Some(start + remaining);
            }
            remaining -= len;
        }
        None
    }
}

/// A simple extent-allocating file layer over a [`Device`].
///
/// Read-store run files (`Leaf`, `I1`, `I2`, ... in the paper's terminology)
/// are created through this layer: each run file is written strictly
/// append-only during a consistency point and later read randomly by the
/// query engine. The store allocates device pages in contiguous extents so
/// that sequential run writes stay sequential on the simulated disk, which is
/// what makes consistency-point flushes cheap in the latency model.
///
/// # Concurrency
///
/// The store is internally synchronized and shared by every table (and, with
/// parallel maintenance, every rebuild worker). One mutex guards the
/// allocation/metadata state; every critical section is bookkeeping only —
/// page I/O always happens after the lock is released, so a slow device never
/// extends the lock hold time. Acquisitions that find the lock held are
/// counted in the device's [`IoStats`](crate::IoStats) as `lock_contentions`.
#[derive(Debug)]
pub struct FileStore {
    device: Arc<dyn Device>,
    state: Mutex<StoreState>,
}

#[derive(Debug, Default)]
struct StoreState {
    files: HashMap<FileId, FileMeta>,
    next_file: u64,
    /// Next never-allocated device page (bump allocation).
    next_page: PageNo,
    /// Pages returned by deleted files, reused before extending `next_page`.
    free: Vec<(PageNo, u64)>,
}

impl FileStore {
    /// Creates a file store allocating from page 0 of `device`.
    pub fn new(device: Arc<dyn Device>) -> Self {
        FileStore {
            device,
            state: Mutex::new(StoreState::default()),
        }
    }

    /// Creates a file store whose allocations start at `first_page`, leaving
    /// lower page numbers to other users of the device (e.g. file-system data).
    pub fn with_base_page(device: Arc<dyn Device>, first_page: PageNo) -> Self {
        let store = Self::new(device);
        store.state.lock().next_page = first_page;
        store
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// Acquires the state lock, recording a contention event in the device
    /// stats when another thread already holds it. The guard protects pure
    /// bookkeeping; callers must perform page I/O only after dropping it.
    fn lock_state(&self) -> MutexGuard<'_, StoreState> {
        if let Some(guard) = self.state.try_lock() {
            return guard;
        }
        self.device.stats().record_lock_contention();
        self.state.lock()
    }

    /// Creates a new, empty file and returns a handle to it.
    pub fn create(&self) -> VFile<'_> {
        let mut st = self.lock_state();
        let id = FileId(st.next_file);
        st.next_file += 1;
        st.files.insert(
            id,
            FileMeta {
                extents: Vec::new(),
                len_pages: 0,
                len_bytes: 0,
            },
        );
        VFile { store: self, id }
    }

    /// Opens an existing file.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoSuchFile`] if `id` does not name a live file.
    pub fn open(&self, id: FileId) -> Result<VFile<'_>> {
        if self.lock_state().files.contains_key(&id) {
            Ok(VFile { store: self, id })
        } else {
            Err(DeviceError::NoSuchFile { file: id.0 })
        }
    }

    /// Deletes a file, returning its pages to the free list.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoSuchFile`] if `id` does not name a live file.
    pub fn delete(&self, id: FileId) -> Result<()> {
        let mut st = self.lock_state();
        let meta = st
            .files
            .remove(&id)
            .ok_or(DeviceError::NoSuchFile { file: id.0 })?;
        st.free.extend(meta.extents);
        Ok(())
    }

    /// Takes an immutable extent-map snapshot of a file for lock-free page
    /// reads (see [`FileMap`]).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoSuchFile`] if `id` does not name a live file.
    pub fn map_file(&self, id: FileId) -> Result<FileMap> {
        let meta = self
            .lock_state()
            .files
            .get(&id)
            .cloned()
            .ok_or(DeviceError::NoSuchFile { file: id.0 })?;
        Ok(FileMap {
            device: self.device.clone(),
            meta,
        })
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.lock_state().files.len()
    }

    /// Total pages currently allocated to live files.
    pub fn allocated_pages(&self) -> u64 {
        self.lock_state().files.values().map(|f| f.len_pages).sum()
    }

    /// Total logical bytes across live files (the "database size" that the
    /// paper's space-overhead figures report).
    pub fn allocated_bytes(&self) -> u64 {
        self.lock_state().files.values().map(|f| f.len_bytes).sum()
    }

    fn allocate(&self, st: &mut StoreState, pages: u64) -> Result<Vec<(PageNo, u64)>> {
        let mut out = Vec::new();
        let mut need = pages;
        while need > 0 {
            if let Some((start, len)) = st.free.pop() {
                let take = len.min(need);
                out.push((start, take));
                if take < len {
                    st.free.push((start + take, len - take));
                }
                need -= take;
            } else {
                let start = st.next_page;
                if start + need > self.device.capacity_pages() {
                    return Err(DeviceError::OutOfSpace { requested: pages });
                }
                st.next_page += need;
                out.push((start, need));
                need = 0;
            }
        }
        Ok(out)
    }
}

/// An owned, immutable snapshot of a file's extent map, resolving page reads
/// directly against the device without going back through the store.
///
/// Reading through a [`VFile`] handle takes the store lock and walks the
/// extent list on every call; a `FileMap` captures the extent list once, so
/// repeated random reads of a finished file (the LSM read-store access
/// pattern — run files are immutable once built) pay neither the lock nor
/// the hash-map lookup. The snapshot does *not* track later appends; take it
/// only once a file is fully written.
#[derive(Debug, Clone)]
pub struct FileMap {
    device: Arc<dyn Device>,
    meta: FileMeta,
}

impl FileMap {
    /// Length of the mapped file in pages.
    pub fn len_pages(&self) -> u64 {
        self.meta.len_pages
    }

    /// Reads the page at file offset `offset` (in pages), translating through
    /// the cached extent map.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::FileOffsetOutOfRange`] when `offset` is past
    /// the end of the snapshot and propagates device errors.
    pub fn read_page(&self, offset: u64) -> Result<Vec<u8>> {
        let device_page = self
            .meta
            .page_at(offset)
            .ok_or(DeviceError::FileOffsetOutOfRange {
                offset,
                len: self.meta.len_pages,
            })?;
        self.device.read_page(device_page)
    }
}

/// A handle to one virtual file inside a [`FileStore`].
///
/// The handle borrows the store; it is cheap to recreate from a [`FileId`]
/// via [`FileStore::open`].
#[derive(Debug)]
pub struct VFile<'a> {
    store: &'a FileStore,
    id: FileId,
}

impl<'a> VFile<'a> {
    /// This file's identifier, stable across open/close.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// Length of the file in pages.
    pub fn len_pages(&self) -> u64 {
        self.store
            .state
            .lock()
            .files
            .get(&self.id)
            .map(|f| f.len_pages)
            .unwrap_or(0)
    }

    /// Logical length of the file in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.store
            .state
            .lock()
            .files
            .get(&self.id)
            .map(|f| f.len_bytes)
            .unwrap_or(0)
    }

    /// Appends one page of data (at most [`PAGE_SIZE`] bytes, zero padded)
    /// and returns the page offset within the file at which it was written.
    ///
    /// # Errors
    ///
    /// Propagates allocation and device errors.
    pub fn append_page(&self, data: &[u8]) -> Result<u64> {
        if data.len() > PAGE_SIZE {
            return Err(DeviceError::BadBufferLength { got: data.len() });
        }
        let (device_page, offset) = {
            let mut st = self.store.lock_state();
            // Allocate one page, extending the last extent when contiguous.
            let extents = self.store.allocate(&mut st, 1)?;
            let (page, _) = extents[0];
            let meta = st
                .files
                .get_mut(&self.id)
                .ok_or(DeviceError::NoSuchFile { file: self.id.0 })?;
            match meta.extents.last_mut() {
                Some((start, len)) if *start + *len == page => *len += 1,
                _ => meta.extents.push((page, 1)),
            }
            let offset = meta.len_pages;
            meta.len_pages += 1;
            meta.len_bytes += data.len() as u64;
            (page, offset)
        };
        self.store.device.write_page(device_page, data)?;
        Ok(offset)
    }

    /// Reads the page at file offset `offset` (in pages).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::FileOffsetOutOfRange`] when `offset` is past
    /// the end of the file.
    pub fn read_page(&self, offset: u64) -> Result<Vec<u8>> {
        let device_page = {
            let st = self.store.lock_state();
            let meta = st
                .files
                .get(&self.id)
                .ok_or(DeviceError::NoSuchFile { file: self.id.0 })?;
            meta.page_at(offset)
                .ok_or(DeviceError::FileOffsetOutOfRange {
                    offset,
                    len: meta.len_pages,
                })?
        };
        self.store.device.read_page(device_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceConfig, SimDisk};

    fn store() -> FileStore {
        FileStore::new(SimDisk::new_shared(DeviceConfig::free_latency()))
    }

    #[test]
    fn append_and_read_back() {
        let fs = store();
        let f = fs.create();
        assert_eq!(f.append_page(b"hello").unwrap(), 0);
        assert_eq!(f.append_page(b"world").unwrap(), 1);
        assert_eq!(&f.read_page(0).unwrap()[..5], b"hello");
        assert_eq!(&f.read_page(1).unwrap()[..5], b"world");
        assert_eq!(f.len_pages(), 2);
        assert_eq!(f.len_bytes(), 10);
    }

    #[test]
    fn sequential_appends_are_contiguous_on_device() {
        let disk = SimDisk::new_shared(DeviceConfig::default());
        let fs = FileStore::new(disk.clone());
        let f = fs.create();
        for i in 0..64u8 {
            f.append_page(&[i]).unwrap();
        }
        // One seek for the first write, none for the rest.
        assert_eq!(disk.stats().snapshot().seeks, 1);
    }

    #[test]
    fn read_past_end_errors() {
        let fs = store();
        let f = fs.create();
        f.append_page(&[1]).unwrap();
        assert!(matches!(
            f.read_page(3),
            Err(DeviceError::FileOffsetOutOfRange { offset: 3, len: 1 })
        ));
    }

    #[test]
    fn open_nonexistent_errors() {
        let fs = store();
        assert!(matches!(
            fs.open(FileId(99)),
            Err(DeviceError::NoSuchFile { file: 99 })
        ));
    }

    #[test]
    fn delete_frees_and_reuses_pages() {
        let fs = store();
        let f1 = fs.create();
        for _ in 0..10 {
            f1.append_page(&[1]).unwrap();
        }
        let id1 = f1.id();
        assert_eq!(fs.allocated_pages(), 10);
        fs.delete(id1).unwrap();
        assert_eq!(fs.allocated_pages(), 0);
        assert_eq!(fs.file_count(), 0);
        // A new file should reuse the freed pages rather than extend the device.
        let f2 = fs.create();
        for _ in 0..5 {
            f2.append_page(&[2]).unwrap();
        }
        let st = fs.state.lock();
        assert_eq!(st.next_page, 10, "bump pointer did not grow");
    }

    #[test]
    fn multiple_files_are_independent() {
        let fs = store();
        let a = fs.create();
        let b = fs.create();
        a.append_page(b"a").unwrap();
        b.append_page(b"b").unwrap();
        a.append_page(b"aa").unwrap();
        assert_eq!(&a.read_page(0).unwrap()[..1], b"a");
        assert_eq!(&b.read_page(0).unwrap()[..1], b"b");
        assert_eq!(a.len_pages(), 2);
        assert_eq!(b.len_pages(), 1);
        assert_eq!(fs.file_count(), 2);
        assert_eq!(fs.allocated_bytes(), 4);
    }

    #[test]
    fn with_base_page_respects_reserved_region() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let fs = FileStore::with_base_page(disk, 1000);
        let f = fs.create();
        f.append_page(&[1]).unwrap();
        let st = fs.state.lock();
        assert_eq!(st.next_page, 1001);
    }

    #[test]
    fn out_of_space_is_reported() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency().with_capacity_pages(2));
        let fs = FileStore::new(disk);
        let f = fs.create();
        f.append_page(&[1]).unwrap();
        f.append_page(&[2]).unwrap();
        assert!(matches!(
            f.append_page(&[3]),
            Err(DeviceError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn file_id_displays() {
        assert_eq!(FileId(7).to_string(), "vfile#7");
    }

    #[test]
    fn contended_state_lock_is_counted() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let fs = FileStore::new(disk.clone());
        assert_eq!(disk.stats().snapshot().lock_contentions, 0);
        // Uncontended accesses never count.
        fs.create().append_page(&[1]).unwrap();
        assert_eq!(disk.stats().snapshot().lock_contentions, 0);
        // Hold the state lock on this thread while another thread needs it:
        // that acquisition must be recorded as contended, then complete once
        // the lock is released.
        let guard = fs.state.lock();
        std::thread::scope(|s| {
            let t = s.spawn(|| fs.file_count());
            while disk.stats().snapshot().lock_contentions == 0 {
                std::thread::yield_now();
            }
            drop(guard);
            assert_eq!(t.join().unwrap(), 1);
        });
        assert!(disk.stats().snapshot().lock_contentions >= 1);
    }
}
