use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::completion::Completion;
use crate::device::Device;
use crate::error::{DeviceError, Result};
use crate::{PageNo, PAGE_SIZE};

/// Identifier of a virtual file inside a [`FileStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vfile#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct FileMeta {
    /// Extents of contiguous device pages, in file order.
    extents: Vec<(PageNo, u64)>,
    /// Length in pages.
    len_pages: u64,
    /// Logical length in bytes (may not fill the last page).
    len_bytes: u64,
}

impl FileMeta {
    fn page_at(&self, offset: u64) -> Option<PageNo> {
        let mut remaining = offset;
        for &(start, len) in &self.extents {
            if remaining < len {
                return Some(start + remaining);
            }
            remaining -= len;
        }
        None
    }
}

/// A simple extent-allocating file layer over a [`Device`].
///
/// Read-store run files (`Leaf`, `I1`, `I2`, ... in the paper's terminology)
/// are created through this layer: each run file is written strictly
/// append-only during a consistency point and later read randomly by the
/// query engine. The store allocates device pages in contiguous extents so
/// that sequential run writes stay sequential on the simulated disk, which is
/// what makes consistency-point flushes cheap in the latency model.
///
/// # Concurrency
///
/// The store is internally synchronized and shared by every table (and, with
/// parallel maintenance, every rebuild worker). One mutex guards the
/// allocation/metadata state; every critical section is bookkeeping only —
/// page I/O always happens after the lock is released, so a slow device never
/// extends the lock hold time. Acquisitions that find the lock held are
/// counted in the device's [`IoStats`](crate::IoStats) as `lock_contentions`.
#[derive(Debug)]
pub struct FileStore {
    device: Arc<dyn Device>,
    state: Mutex<StoreState>,
    /// When set, pages of deleted files are *deferred* rather than freed:
    /// they accumulate in `pending_free` and become allocatable only at the
    /// next [`commit_frees`](Self::commit_frees). A durable engine enables
    /// this so that pages still referenced by the last consistency point's
    /// manifest are never overwritten before the next CP's superblock flip
    /// makes them unreachable — the write-anywhere page-reuse rule.
    deferred_frees: AtomicBool,
}

#[derive(Debug, Default)]
struct StoreState {
    files: HashMap<FileId, FileMeta>,
    next_file: u64,
    /// Next never-allocated device page (bump allocation).
    next_page: PageNo,
    /// Pages returned by deleted files, reused before extending `next_page`.
    free: Vec<(PageNo, u64)>,
    /// Pages freed since the last durable consistency point; moved to `free`
    /// by [`FileStore::commit_frees`] once the superblock flip has made the
    /// previous CP's metadata unreachable.
    pending_free: Vec<(PageNo, u64)>,
}

/// A file's durable description — identifier, extent list and lengths — as
/// recorded in a consistency-point manifest and fed back to
/// [`FileStore::restore`] to rebuild the extent map after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedFile {
    /// The file identifier, stable across restore.
    pub id: FileId,
    /// Extents of contiguous device pages, in file order.
    pub extents: Vec<(PageNo, u64)>,
    /// Length in pages.
    pub len_pages: u64,
    /// Logical length in bytes.
    pub len_bytes: u64,
}

impl FileStore {
    /// Creates a file store allocating from page 0 of `device`.
    pub fn new(device: Arc<dyn Device>) -> Self {
        FileStore {
            device,
            state: Mutex::new(StoreState::default()),
            deferred_frees: AtomicBool::new(false),
        }
    }

    /// Creates a file store whose allocations start at `first_page`, leaving
    /// lower page numbers to other users of the device (e.g. file-system data).
    pub fn with_base_page(device: Arc<dyn Device>, first_page: PageNo) -> Self {
        let store = Self::new(device);
        store.state.lock().next_page = first_page;
        store
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// Acquires the state lock, recording a contention event in the device
    /// stats when another thread already holds it. The guard protects pure
    /// bookkeeping; callers must perform page I/O only after dropping it.
    fn lock_state(&self) -> MutexGuard<'_, StoreState> {
        if let Some(guard) = self.state.try_lock() {
            return guard;
        }
        let stats = self.device.stats();
        stats.record_lock_contention();
        let wait_t0 = stats.obs_now();
        let guard = self.state.lock();
        stats.record_lock_wait(
            crate::stats::LOCK_ID_FILE_STORE,
            stats.obs_now().saturating_sub(wait_t0),
        );
        guard
    }

    /// Creates a new, empty file and returns a handle to it.
    pub fn create(&self) -> VFile<'_> {
        let mut st = self.lock_state();
        let id = FileId(st.next_file);
        st.next_file += 1;
        st.files.insert(
            id,
            FileMeta {
                extents: Vec::new(),
                len_pages: 0,
                len_bytes: 0,
            },
        );
        VFile { store: self, id }
    }

    /// Creates a new file whose first `pages` appends are guaranteed to land
    /// in **one contiguous extent**: an exactly-fitting-or-larger free
    /// extent if one exists, otherwise fresh pages from the bump pointer —
    /// never stitched together from free-list fragments. Appends beyond the
    /// reservation fall back to normal allocation.
    ///
    /// The CP manifest is written through this: its extents must fit in the
    /// superblock page, and a single extent always does, no matter how
    /// fragmented the free list has become.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfSpace`] if the device cannot provide
    /// `pages` contiguous fresh pages (and no free extent is big enough).
    pub fn create_reserved(&self, pages: u64) -> Result<VFile<'_>> {
        let mut st = self.lock_state();
        // Best-fit single free extent, if any.
        let reserved = match st
            .free
            .iter()
            .enumerate()
            .filter(|(_, &(_, len))| len >= pages)
            .min_by_key(|(_, &(_, len))| len)
            .map(|(i, _)| i)
        {
            Some(i) => {
                let (start, len) = st.free.swap_remove(i);
                if len > pages {
                    st.free.push((start + pages, len - pages));
                }
                (start, pages)
            }
            None => {
                let start = st.next_page;
                if start + pages > self.device.capacity_pages() {
                    return Err(DeviceError::OutOfSpace { requested: pages });
                }
                st.next_page += pages;
                (start, pages)
            }
        };
        let id = FileId(st.next_file);
        st.next_file += 1;
        st.files.insert(
            id,
            FileMeta {
                extents: vec![reserved],
                len_pages: 0,
                len_bytes: 0,
            },
        );
        Ok(VFile { store: self, id })
    }

    /// Opens an existing file.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoSuchFile`] if `id` does not name a live file.
    pub fn open(&self, id: FileId) -> Result<VFile<'_>> {
        if self.lock_state().files.contains_key(&id) {
            Ok(VFile { store: self, id })
        } else {
            Err(DeviceError::NoSuchFile { file: id.0 })
        }
    }

    /// Deletes a file, returning its pages to the free list — or, when
    /// deferred frees are enabled, to the pending list that
    /// [`commit_frees`](Self::commit_frees) drains at the next durable
    /// consistency point.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoSuchFile`] if `id` does not name a live file.
    pub fn delete(&self, id: FileId) -> Result<()> {
        let deferred = self.deferred_frees.load(Ordering::Relaxed);
        let mut st = self.lock_state();
        let meta = st
            .files
            .remove(&id)
            .ok_or(DeviceError::NoSuchFile { file: id.0 })?;
        if deferred {
            st.pending_free.extend(meta.extents);
        } else {
            st.free.extend(meta.extents);
        }
        Ok(())
    }

    /// Enables or disables deferred frees (see [`delete`](Self::delete)).
    /// Durable engines enable this before any file is deleted.
    pub fn set_deferred_frees(&self, enabled: bool) {
        self.deferred_frees.store(enabled, Ordering::Relaxed);
    }

    /// Moves every deferred-freed extent to the allocatable free list.
    /// Called immediately after a superblock flip: the pages freed during
    /// the previous CP interval are no longer reachable from any durable
    /// superblock, so reusing them can no longer corrupt recovery.
    pub fn commit_frees(&self) {
        let mut st = self.lock_state();
        let pending = std::mem::take(&mut st.pending_free);
        st.free.extend(pending);
    }

    /// Pages currently parked on the deferred-free list.
    pub fn pending_free_pages(&self) -> u64 {
        self.lock_state().pending_free.iter().map(|&(_, l)| l).sum()
    }

    /// The durable description of a live file (extents and lengths), as
    /// recorded in consistency-point manifests.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoSuchFile`] if `id` does not name a live file.
    pub fn file_meta(&self, id: FileId) -> Result<PersistedFile> {
        let st = self.lock_state();
        let meta = st
            .files
            .get(&id)
            .ok_or(DeviceError::NoSuchFile { file: id.0 })?;
        Ok(PersistedFile {
            id,
            extents: meta.extents.clone(),
            len_pages: meta.len_pages,
            len_bytes: meta.len_bytes,
        })
    }

    /// The allocation cursor `(next_file, next_page)`. A superblock records
    /// this *after* the manifest file is written, so every file id and
    /// extent it references lies below the recorded cursor.
    pub fn alloc_cursor(&self) -> (u64, PageNo) {
        let st = self.lock_state();
        (st.next_file, st.next_page)
    }

    /// Rebuilds a file store from the durable state a consistency-point
    /// manifest recorded: the live files (with their extents), the
    /// allocation cursor, and the first allocatable page. Every page in
    /// `[base_page, next_page)` not covered by a restored file becomes free
    /// — an exact reconstruction is unnecessary because anything a durable
    /// superblock can reach is, by construction, covered by `files`.
    ///
    /// The restored store has deferred frees enabled (restore only ever
    /// happens on a durable device).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidRestore`] if two files claim the same
    /// page, an extent lies outside `[base_page, next_page)`, or a file id
    /// is duplicated or at/above `next_file` — all symptoms of a corrupt
    /// manifest.
    pub fn restore(
        device: Arc<dyn Device>,
        base_page: PageNo,
        next_file: u64,
        next_page: PageNo,
        files: Vec<PersistedFile>,
    ) -> Result<Self> {
        let mut map: HashMap<FileId, FileMeta> = HashMap::with_capacity(files.len());
        let mut claimed: Vec<(PageNo, u64)> = Vec::new();
        for f in files {
            let total: u64 = f.extents.iter().map(|&(_, len)| len).sum();
            if total != f.len_pages {
                return Err(DeviceError::InvalidRestore {
                    detail: format!(
                        "{} extents cover {total} pages, length says {}",
                        f.id, f.len_pages
                    ),
                });
            }
            for &(start, len) in &f.extents {
                if len == 0 || start < base_page || start.saturating_add(len) > next_page {
                    return Err(DeviceError::InvalidRestore {
                        detail: format!(
                            "{} extent [{start}, +{len}) escapes [{base_page}, {next_page})",
                            f.id
                        ),
                    });
                }
                claimed.push((start, len));
            }
            if f.id.0 >= next_file {
                return Err(DeviceError::InvalidRestore {
                    detail: format!("{} is at or above the next-file cursor {next_file}", f.id),
                });
            }
            let prev = map.insert(
                f.id,
                FileMeta {
                    extents: f.extents,
                    len_pages: f.len_pages,
                    len_bytes: f.len_bytes,
                },
            );
            if prev.is_some() {
                return Err(DeviceError::InvalidRestore {
                    detail: format!("duplicate file {}", f.id),
                });
            }
        }
        // Free space = the complement of the claimed extents within
        // [base_page, next_page). Overlapping claims are corruption.
        claimed.sort_unstable();
        let mut free = Vec::new();
        let mut cursor = base_page;
        for &(start, len) in &claimed {
            if start < cursor {
                return Err(DeviceError::InvalidRestore {
                    detail: format!("extents overlap at page {start}"),
                });
            }
            if start > cursor {
                free.push((cursor, start - cursor));
            }
            cursor = start + len;
        }
        if cursor < next_page {
            free.push((cursor, next_page - cursor));
        }
        Ok(FileStore {
            device,
            state: Mutex::new(StoreState {
                files: map,
                next_file,
                next_page,
                free,
                pending_free: Vec::new(),
            }),
            deferred_frees: AtomicBool::new(true),
        })
    }

    /// Takes an immutable extent-map snapshot of a file for lock-free page
    /// reads (see [`FileMap`]).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoSuchFile`] if `id` does not name a live file.
    pub fn map_file(&self, id: FileId) -> Result<FileMap> {
        let meta = self
            .lock_state()
            .files
            .get(&id)
            .cloned()
            .ok_or(DeviceError::NoSuchFile { file: id.0 })?;
        Ok(FileMap {
            device: self.device.clone(),
            meta,
        })
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.lock_state().files.len()
    }

    /// Total pages currently allocated to live files.
    pub fn allocated_pages(&self) -> u64 {
        self.lock_state().files.values().map(|f| f.len_pages).sum()
    }

    /// Total logical bytes across live files (the "database size" that the
    /// paper's space-overhead figures report).
    pub fn allocated_bytes(&self) -> u64 {
        self.lock_state().files.values().map(|f| f.len_bytes).sum()
    }

    fn allocate(&self, st: &mut StoreState, pages: u64) -> Result<Vec<(PageNo, u64)>> {
        let mut out = Vec::new();
        let mut need = pages;
        while need > 0 {
            if let Some((start, len)) = st.free.pop() {
                let take = len.min(need);
                out.push((start, take));
                if take < len {
                    st.free.push((start + take, len - take));
                }
                need -= take;
            } else {
                let start = st.next_page;
                if start + need > self.device.capacity_pages() {
                    return Err(DeviceError::OutOfSpace { requested: pages });
                }
                st.next_page += need;
                out.push((start, need));
                need = 0;
            }
        }
        Ok(out)
    }
}

/// An owned, immutable snapshot of a file's extent map, resolving page reads
/// directly against the device without going back through the store.
///
/// Reading through a [`VFile`] handle takes the store lock and walks the
/// extent list on every call; a `FileMap` captures the extent list once, so
/// repeated random reads of a finished file (the LSM read-store access
/// pattern — run files are immutable once built) pay neither the lock nor
/// the hash-map lookup. The snapshot does *not* track later appends; take it
/// only once a file is fully written.
#[derive(Debug, Clone)]
pub struct FileMap {
    device: Arc<dyn Device>,
    meta: FileMeta,
}

impl FileMap {
    /// Length of the mapped file in pages.
    pub fn len_pages(&self) -> u64 {
        self.meta.len_pages
    }

    /// Reads the page at file offset `offset` (in pages), translating through
    /// the cached extent map.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::FileOffsetOutOfRange`] when `offset` is past
    /// the end of the snapshot and propagates device errors.
    pub fn read_page(&self, offset: u64) -> Result<Vec<u8>> {
        let device_page = self
            .meta
            .page_at(offset)
            .ok_or(DeviceError::FileOffsetOutOfRange {
                offset,
                len: self.meta.len_pages,
            })?;
        self.device.read_page(device_page)
    }
}

/// A handle to one virtual file inside a [`FileStore`].
///
/// The handle borrows the store; it is cheap to recreate from a [`FileId`]
/// via [`FileStore::open`].
#[derive(Debug)]
pub struct VFile<'a> {
    store: &'a FileStore,
    id: FileId,
}

impl<'a> VFile<'a> {
    /// This file's identifier, stable across open/close.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// Length of the file in pages.
    pub fn len_pages(&self) -> u64 {
        self.store
            .state
            .lock()
            .files
            .get(&self.id)
            .map(|f| f.len_pages)
            .unwrap_or(0)
    }

    /// Logical length of the file in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.store
            .state
            .lock()
            .files
            .get(&self.id)
            .map(|f| f.len_bytes)
            .unwrap_or(0)
    }

    /// Appends one page of data (at most [`PAGE_SIZE`] bytes, zero padded)
    /// and returns the page offset within the file at which it was written.
    ///
    /// # Errors
    ///
    /// Propagates allocation and device errors.
    pub fn append_page(&self, data: &[u8]) -> Result<u64> {
        let (offset, completion) = self.append_page_async(data)?;
        completion.wait()?;
        Ok(offset)
    }

    /// Like [`append_page`](VFile::append_page), but returns the offset
    /// together with the write's [`Completion`] instead of waiting for it:
    /// the allocation (and the file's length) advance immediately, the page
    /// write rides the device queue. Run builders pipeline their page-out
    /// through this. Allocation errors still surface here, at the submit —
    /// only device errors move to the completion.
    ///
    /// # Errors
    ///
    /// [`DeviceError::BadBufferLength`] for oversized buffers and
    /// allocation failures ([`DeviceError::OutOfSpace`],
    /// [`DeviceError::NoSuchFile`]).
    pub fn append_page_async(&self, data: &[u8]) -> Result<(u64, Completion)> {
        if data.len() > PAGE_SIZE {
            return Err(DeviceError::BadBufferLength { got: data.len() });
        }
        let (device_page, offset) = {
            let mut st = self.store.lock_state();
            let meta = st
                .files
                .get(&self.id)
                .ok_or(DeviceError::NoSuchFile { file: self.id.0 })?;
            // Capacity reserved at creation (create_reserved) is consumed
            // before anything is allocated.
            let reserved: u64 = meta.extents.iter().map(|&(_, len)| len).sum();
            let page = if meta.len_pages < reserved {
                meta.page_at(meta.len_pages).expect("within reservation")
            } else {
                // Allocate one page, extending the last extent when
                // contiguous.
                let extents = self.store.allocate(&mut st, 1)?;
                let (page, _) = extents[0];
                let meta = st.files.get_mut(&self.id).expect("checked above");
                match meta.extents.last_mut() {
                    Some((start, len)) if *start + *len == page => *len += 1,
                    _ => meta.extents.push((page, 1)),
                }
                page
            };
            let meta = st.files.get_mut(&self.id).expect("checked above");
            let offset = meta.len_pages;
            meta.len_pages += 1;
            meta.len_bytes += data.len() as u64;
            (page, offset)
        };
        Ok((offset, self.store.device.submit_write(device_page, data)))
    }

    /// Reads the page at file offset `offset` (in pages).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::FileOffsetOutOfRange`] when `offset` is past
    /// the end of the file.
    pub fn read_page(&self, offset: u64) -> Result<Vec<u8>> {
        let device_page = {
            let st = self.store.lock_state();
            let meta = st
                .files
                .get(&self.id)
                .ok_or(DeviceError::NoSuchFile { file: self.id.0 })?;
            meta.page_at(offset)
                .ok_or(DeviceError::FileOffsetOutOfRange {
                    offset,
                    len: meta.len_pages,
                })?
        };
        self.store.device.read_page(device_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceConfig, SimDisk};

    fn store() -> FileStore {
        FileStore::new(SimDisk::new_shared(DeviceConfig::free_latency()))
    }

    #[test]
    fn append_and_read_back() {
        let fs = store();
        let f = fs.create();
        assert_eq!(f.append_page(b"hello").unwrap(), 0);
        assert_eq!(f.append_page(b"world").unwrap(), 1);
        assert_eq!(&f.read_page(0).unwrap()[..5], b"hello");
        assert_eq!(&f.read_page(1).unwrap()[..5], b"world");
        assert_eq!(f.len_pages(), 2);
        assert_eq!(f.len_bytes(), 10);
    }

    #[test]
    fn sequential_appends_are_contiguous_on_device() {
        let disk = SimDisk::new_shared(DeviceConfig::default());
        let fs = FileStore::new(disk.clone());
        let f = fs.create();
        for i in 0..64u8 {
            f.append_page(&[i]).unwrap();
        }
        // One seek for the first write, none for the rest.
        assert_eq!(disk.stats().snapshot().seeks, 1);
    }

    #[test]
    fn async_appends_pipeline_and_read_back() {
        let disk = SimDisk::new_shared(DeviceConfig::default().with_queue_depth(4));
        let fs = FileStore::new(disk.clone());
        let f = fs.create();
        let mut pending = Vec::new();
        for i in 0..16u8 {
            let (offset, completion) = f.append_page_async(&[i]).unwrap();
            assert_eq!(offset, u64::from(i), "offsets assigned at submit");
            pending.push(completion);
        }
        assert_eq!(f.len_pages(), 16, "length advanced before the waits");
        for c in &pending {
            c.wait().unwrap();
        }
        for i in 0..16u64 {
            assert_eq!(f.read_page(i).unwrap()[0], i as u8);
        }
        assert!(
            disk.stats().snapshot().max_in_flight > 1,
            "appends overlapped"
        );
    }

    #[test]
    fn read_past_end_errors() {
        let fs = store();
        let f = fs.create();
        f.append_page(&[1]).unwrap();
        assert!(matches!(
            f.read_page(3),
            Err(DeviceError::FileOffsetOutOfRange { offset: 3, len: 1 })
        ));
    }

    #[test]
    fn open_nonexistent_errors() {
        let fs = store();
        assert!(matches!(
            fs.open(FileId(99)),
            Err(DeviceError::NoSuchFile { file: 99 })
        ));
    }

    #[test]
    fn delete_frees_and_reuses_pages() {
        let fs = store();
        let f1 = fs.create();
        for _ in 0..10 {
            f1.append_page(&[1]).unwrap();
        }
        let id1 = f1.id();
        assert_eq!(fs.allocated_pages(), 10);
        fs.delete(id1).unwrap();
        assert_eq!(fs.allocated_pages(), 0);
        assert_eq!(fs.file_count(), 0);
        // A new file should reuse the freed pages rather than extend the device.
        let f2 = fs.create();
        for _ in 0..5 {
            f2.append_page(&[2]).unwrap();
        }
        let st = fs.state.lock();
        assert_eq!(st.next_page, 10, "bump pointer did not grow");
    }

    #[test]
    fn multiple_files_are_independent() {
        let fs = store();
        let a = fs.create();
        let b = fs.create();
        a.append_page(b"a").unwrap();
        b.append_page(b"b").unwrap();
        a.append_page(b"aa").unwrap();
        assert_eq!(&a.read_page(0).unwrap()[..1], b"a");
        assert_eq!(&b.read_page(0).unwrap()[..1], b"b");
        assert_eq!(a.len_pages(), 2);
        assert_eq!(b.len_pages(), 1);
        assert_eq!(fs.file_count(), 2);
        assert_eq!(fs.allocated_bytes(), 4);
    }

    #[test]
    fn with_base_page_respects_reserved_region() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let fs = FileStore::with_base_page(disk, 1000);
        let f = fs.create();
        f.append_page(&[1]).unwrap();
        let st = fs.state.lock();
        assert_eq!(st.next_page, 1001);
    }

    #[test]
    fn out_of_space_is_reported() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency().with_capacity_pages(2));
        let fs = FileStore::new(disk);
        let f = fs.create();
        f.append_page(&[1]).unwrap();
        f.append_page(&[2]).unwrap();
        assert!(matches!(
            f.append_page(&[3]),
            Err(DeviceError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn file_id_displays() {
        assert_eq!(FileId(7).to_string(), "vfile#7");
    }

    #[test]
    fn create_reserved_yields_one_extent_despite_fragmentation() {
        let fs = store();
        // Fragment the free list: interleaved single-page files, odd ones
        // deleted.
        let mut ids = Vec::new();
        for i in 0..20u8 {
            let f = fs.create();
            f.append_page(&[i]).unwrap();
            ids.push(f.id());
        }
        for id in ids.iter().skip(1).step_by(2) {
            fs.delete(*id).unwrap();
        }
        // A 4-page reservation cannot be stitched from the 1-page holes: it
        // must be one fresh contiguous extent.
        let f = fs.create_reserved(4).unwrap();
        for i in 0..4u8 {
            f.append_page(&[i]).unwrap();
        }
        let meta = fs.file_meta(f.id()).unwrap();
        assert_eq!(meta.extents.len(), 1, "reserved file is one extent");
        assert_eq!(meta.extents[0].1, 4);
        assert_eq!(meta.len_pages, 4);
        for i in 0..4u64 {
            assert_eq!(f.read_page(i).unwrap()[0], i as u8);
        }
        // A 1-page reservation best-fits into a freed hole instead.
        let g = fs.create_reserved(1).unwrap();
        g.append_page(&[9]).unwrap();
        let meta = fs.file_meta(g.id()).unwrap();
        assert!(meta.extents[0].0 < 20, "reused a freed page");
        // Appending past the reservation falls back to normal allocation.
        let before = fs.file_meta(f.id()).unwrap().len_pages;
        f.append_page(&[9]).unwrap();
        assert_eq!(f.len_pages(), before + 1);
        assert_eq!(&f.read_page(4).unwrap()[..1], &[9]);
        // Reservations larger than the device fail cleanly.
        let tiny = SimDisk::new_shared(DeviceConfig::free_latency().with_capacity_pages(8));
        let tfs = FileStore::new(tiny);
        assert!(matches!(
            tfs.create_reserved(9),
            Err(DeviceError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn deferred_frees_park_pages_until_commit() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let fs = FileStore::new(disk);
        fs.set_deferred_frees(true);
        let f = fs.create();
        for _ in 0..4 {
            f.append_page(&[1]).unwrap();
        }
        let id = f.id();
        fs.delete(id).unwrap();
        assert_eq!(fs.pending_free_pages(), 4);
        // A new allocation must NOT reuse the deferred pages: the previous
        // consistency point's metadata may still reference them.
        let g = fs.create();
        g.append_page(&[2]).unwrap();
        assert_eq!(fs.state.lock().next_page, 5, "bump past the parked pages");
        // After the superblock flip the pages become allocatable again.
        fs.commit_frees();
        assert_eq!(fs.pending_free_pages(), 0);
        let h = fs.create();
        h.append_page(&[3]).unwrap();
        assert_eq!(fs.state.lock().next_page, 5, "freed page reused");
    }

    #[test]
    fn file_meta_and_alloc_cursor_describe_live_state() {
        let fs = store();
        let f = fs.create();
        f.append_page(b"abc").unwrap();
        f.append_page(b"defg").unwrap();
        let meta = fs.file_meta(f.id()).unwrap();
        assert_eq!(meta.id, f.id());
        assert_eq!(meta.len_pages, 2);
        assert_eq!(meta.len_bytes, 7);
        assert_eq!(meta.extents.iter().map(|&(_, l)| l).sum::<u64>(), 2);
        assert_eq!(fs.alloc_cursor(), (1, 2));
        assert!(matches!(
            fs.file_meta(FileId(9)),
            Err(DeviceError::NoSuchFile { file: 9 })
        ));
    }

    #[test]
    fn restore_rebuilds_extent_map_and_free_space() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        // Original store: two files with a hole between them (file 1 deleted).
        let fs = FileStore::with_base_page(disk.clone(), 2);
        let keep = fs.create();
        for i in 0..3u8 {
            keep.append_page(&[i]).unwrap();
        }
        let dead = fs.create();
        for _ in 0..2 {
            dead.append_page(&[9]).unwrap();
        }
        let tail = fs.create();
        tail.append_page(b"tail").unwrap();
        let (keep_id, dead_id, tail_id) = (keep.id(), dead.id(), tail.id());
        fs.delete(dead_id).unwrap();
        let metas = vec![
            fs.file_meta(keep_id).unwrap(),
            fs.file_meta(tail_id).unwrap(),
        ];
        let (next_file, next_page) = fs.alloc_cursor();
        drop(fs);

        let restored = FileStore::restore(disk, 2, next_file, next_page, metas).unwrap();
        assert_eq!(restored.file_count(), 2);
        assert_eq!(
            &restored.open(keep_id).unwrap().read_page(2).unwrap()[..1],
            &[2]
        );
        assert_eq!(
            &restored.open(tail_id).unwrap().read_page(0).unwrap()[..4],
            b"tail"
        );
        // The hole left by the deleted file is allocatable again, and new
        // file ids continue past the restored cursor.
        let f = restored.create();
        assert_eq!(f.id(), FileId(next_file));
        f.append_page(&[1]).unwrap();
        f.append_page(&[2]).unwrap();
        let st = restored.state.lock();
        assert_eq!(st.next_page, next_page, "hole reused before bumping");
    }

    #[test]
    fn restore_rejects_corrupt_state() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let file = |id: u64, extents: Vec<(u64, u64)>| PersistedFile {
            id: FileId(id),
            len_pages: extents.iter().map(|&(_, l)| l).sum(),
            len_bytes: 0,
            extents,
        };
        // Overlapping extents.
        let r = FileStore::restore(
            disk.clone(),
            2,
            5,
            20,
            vec![file(0, vec![(2, 4)]), file(1, vec![(4, 2)])],
        );
        assert!(matches!(r, Err(DeviceError::InvalidRestore { .. })));
        // Extent past the allocation cursor.
        let r = FileStore::restore(disk.clone(), 2, 5, 10, vec![file(0, vec![(8, 4)])]);
        assert!(matches!(r, Err(DeviceError::InvalidRestore { .. })));
        // Extent below the base page (would overlap the superblock).
        let r = FileStore::restore(disk.clone(), 2, 5, 10, vec![file(0, vec![(1, 2)])]);
        assert!(matches!(r, Err(DeviceError::InvalidRestore { .. })));
        // Duplicate file id.
        let r = FileStore::restore(
            disk.clone(),
            2,
            5,
            20,
            vec![file(0, vec![(2, 1)]), file(0, vec![(3, 1)])],
        );
        assert!(matches!(r, Err(DeviceError::InvalidRestore { .. })));
        // File id at the cursor.
        let r = FileStore::restore(disk.clone(), 2, 1, 20, vec![file(1, vec![(2, 1)])]);
        assert!(matches!(r, Err(DeviceError::InvalidRestore { .. })));
        // Length mismatch.
        let mut bad = file(0, vec![(2, 2)]);
        bad.len_pages = 3;
        let r = FileStore::restore(disk, 2, 5, 20, vec![bad]);
        assert!(matches!(r, Err(DeviceError::InvalidRestore { .. })));
    }

    #[test]
    fn contended_state_lock_is_counted() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let fs = FileStore::new(disk.clone());
        assert_eq!(disk.stats().snapshot().lock_contentions, 0);
        // Uncontended accesses never count.
        fs.create().append_page(&[1]).unwrap();
        assert_eq!(disk.stats().snapshot().lock_contentions, 0);
        // Hold the state lock on this thread while another thread needs it:
        // that acquisition must be recorded as contended, then complete once
        // the lock is released.
        let guard = fs.state.lock();
        std::thread::scope(|s| {
            let t = s.spawn(|| fs.file_count());
            while disk.stats().snapshot().lock_contentions == 0 {
                std::thread::yield_now();
            }
            drop(guard);
            assert_eq!(t.join().unwrap(), 1);
        });
        assert!(disk.stats().snapshot().lock_contentions >= 1);
    }
}
