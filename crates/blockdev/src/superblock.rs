//! The on-device superblock: the single fixed-location anchor of the
//! back-reference database.
//!
//! Everything else the database writes is *write-anywhere* — run files and
//! the consistency-point manifest live wherever the [`FileStore`] allocated
//! them, and a consistency point never overwrites a page that the previous
//! consistency point can still reach. The superblock is the one exception: a
//! fixed pair of device pages ([`SUPERBLOCK_PAGES`]) written in *ping-pong*
//! fashion (generation `g` goes to page `g % 2`), so the previous
//! generation's superblock is intact until the new one is fully on the
//! device. Each copy is self-validating (magic + FNV-1a checksum);
//! [`Superblock::read_latest`] returns the valid copy with the highest
//! generation, which is exactly the last consistency point whose final write
//! completed.
//!
//! The superblock carries just enough to bootstrap recovery without any
//! other metadata: a pointer to the manifest (its virtual-file id, byte
//! length and raw device extents — raw, because the extent map that would
//! normally resolve the file lives *inside* the manifest) and the file
//! store's allocation cursor. The recovery invariant the ping-pong scheme
//! enforces: **the superblock never points at a manifest that is not fully
//! on disk** — the manifest's pages are written first, the superblock flip
//! is the last write of the consistency point.
//!
//! [`FileStore`]: crate::FileStore

// Decode-surface module: recovery paths must return errors, never panic
// (enforced by `backlint` panic-free and audited by clippy here).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use crate::device::Device;
use crate::error::{DeviceError, Result};
use crate::{PageNo, PAGE_SIZE};

/// The two device pages reserved for the ping-pong superblock copies.
pub const SUPERBLOCK_PAGES: [PageNo; 2] = [0, 1];

/// The first device page available to the file store when a superblock is in
/// use (pages below this are reserved).
pub const FIRST_DATA_PAGE: PageNo = 2;

const MAGIC: &[u8; 8] = b"BKLGSUPR";
const VERSION: u32 = 2;
/// magic(8) + checksum(8) + version(4) + generation(8) + manifest_file(8) +
/// manifest_len_bytes(8) + next_file(8) + next_page(8) + journal_file(8) +
/// journal_start(8) + journal_pages(8) + journal_tail_page(8) +
/// journal_tail_seq(8) + extent_count(4).
const HEADER_LEN: usize = 8 + 8 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 4;
/// How many manifest extents fit in one superblock page.
pub const MAX_MANIFEST_EXTENTS: usize = (PAGE_SIZE - HEADER_LEN) / 16;

/// FNV-1a 64-bit checksum, used by the superblock and by the CP manifest to
/// detect torn or corrupt metadata after a crash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Bounds-checked big-endian u32 read at `at`.
fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_be_bytes(buf.get(at..at + 4)?.try_into().ok()?))
}

/// Bounds-checked big-endian u64 read at `at`.
fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_be_bytes(buf.get(at..at + 8)?.try_into().ok()?))
}

/// One durable consistency point's root metadata (see the module docs for
/// the recovery protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Monotonically increasing consistency-point generation (the first
    /// durable CP writes generation 1).
    pub generation: u64,
    /// The manifest's virtual-file id inside the file store, re-registered on
    /// restore so its pages are not reallocated until the next CP retires it.
    pub manifest_file: u64,
    /// Length of the manifest in bytes (the last manifest page may be
    /// partially filled).
    pub manifest_len_bytes: u64,
    /// The file store's next-file cursor as of this CP (taken after the
    /// manifest file was created, so it is past every file the manifest
    /// references).
    pub next_file: u64,
    /// The file store's bump-allocation cursor as of this CP (taken after
    /// the manifest pages were written, so every referenced extent lies
    /// below it).
    pub next_page: PageNo,
    /// Virtual-file id of the on-device journal ring, re-registered on
    /// restore so its pages are never reallocated. Meaningful only when
    /// `journal_pages` is non-zero.
    pub journal_file: u64,
    /// First device page of the journal ring's single extent.
    pub journal_start: PageNo,
    /// Length of the journal ring in pages; zero means this database has no
    /// on-device journal.
    pub journal_pages: u64,
    /// Ring-relative page offset of the journal tail (the oldest live group)
    /// as of this CP. Recovery scans forward from here.
    pub journal_tail_page: u64,
    /// Sequence number the group at `journal_tail_page` must carry; the scan
    /// stops at the first group that breaks the contiguous sequence chain.
    pub journal_tail_seq: u64,
    /// Raw device extents of the manifest file, in file order.
    pub manifest_extents: Vec<(PageNo, u64)>,
}

impl Superblock {
    /// Serializes the superblock into one page-sized buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::SuperblockOverflow`] if the manifest is spread
    /// over more extents than fit in a page. Unreachable when the manifest
    /// is written through
    /// [`FileStore::create_reserved`](crate::FileStore::create_reserved)
    /// (one contiguous extent by construction); the check is defensive.
    pub fn encode(&self) -> Result<Vec<u8>> {
        if self.manifest_extents.len() > MAX_MANIFEST_EXTENTS {
            return Err(DeviceError::SuperblockOverflow {
                extents: self.manifest_extents.len(),
            });
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..8].copy_from_slice(MAGIC);
        // buf[8..16] is the checksum, filled below.
        buf[16..20].copy_from_slice(&VERSION.to_be_bytes());
        buf[20..28].copy_from_slice(&self.generation.to_be_bytes());
        buf[28..36].copy_from_slice(&self.manifest_file.to_be_bytes());
        buf[36..44].copy_from_slice(&self.manifest_len_bytes.to_be_bytes());
        buf[44..52].copy_from_slice(&self.next_file.to_be_bytes());
        buf[52..60].copy_from_slice(&self.next_page.to_be_bytes());
        buf[60..68].copy_from_slice(&self.journal_file.to_be_bytes());
        buf[68..76].copy_from_slice(&self.journal_start.to_be_bytes());
        buf[76..84].copy_from_slice(&self.journal_pages.to_be_bytes());
        buf[84..92].copy_from_slice(&self.journal_tail_page.to_be_bytes());
        buf[92..100].copy_from_slice(&self.journal_tail_seq.to_be_bytes());
        buf[100..104].copy_from_slice(&(self.manifest_extents.len() as u32).to_be_bytes());
        let mut at = HEADER_LEN;
        for &(start, len) in &self.manifest_extents {
            buf[at..at + 8].copy_from_slice(&start.to_be_bytes());
            buf[at + 8..at + 16].copy_from_slice(&len.to_be_bytes());
            at += 16;
        }
        let checksum = fnv1a64(&buf[16..]);
        buf[8..16].copy_from_slice(&checksum.to_be_bytes());
        Ok(buf)
    }

    /// Deserializes a superblock copy, returning `None` if the page does not
    /// hold a valid one (wrong magic, wrong version, bad checksum). All
    /// reads are bounds-checked: a short or torn page is invalid, never a
    /// panic.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < PAGE_SIZE || buf.get(0..8)? != MAGIC {
            return None;
        }
        let checksum = read_u64(buf, 8)?;
        if fnv1a64(buf.get(16..PAGE_SIZE)?) != checksum {
            return None;
        }
        if read_u32(buf, 16)? != VERSION {
            return None;
        }
        let extent_count = read_u32(buf, 100)? as usize;
        if extent_count > MAX_MANIFEST_EXTENTS {
            return None;
        }
        let mut extents = Vec::with_capacity(extent_count);
        for i in 0..extent_count {
            let at = HEADER_LEN + i * 16;
            extents.push((read_u64(buf, at)?, read_u64(buf, at + 8)?));
        }
        Some(Superblock {
            generation: read_u64(buf, 20)?,
            manifest_file: read_u64(buf, 28)?,
            manifest_len_bytes: read_u64(buf, 36)?,
            next_file: read_u64(buf, 44)?,
            next_page: read_u64(buf, 52)?,
            journal_file: read_u64(buf, 60)?,
            journal_start: read_u64(buf, 68)?,
            journal_pages: read_u64(buf, 76)?,
            journal_tail_page: read_u64(buf, 84)?,
            journal_tail_seq: read_u64(buf, 92)?,
            manifest_extents: extents,
        })
    }

    /// Writes this superblock to its ping-pong slot
    /// (`SUPERBLOCK_PAGES[generation % 2]`), leaving the previous
    /// generation's copy untouched. This must be the *last* write of a
    /// consistency point.
    ///
    /// # Errors
    ///
    /// Propagates device errors and [`DeviceError::SuperblockOverflow`].
    pub fn write_to(&self, device: &dyn Device) -> Result<()> {
        let page = SUPERBLOCK_PAGES[(self.generation % 2) as usize];
        device.write_page(page, &self.encode()?)
    }

    /// Reads both superblock copies and returns the valid one with the
    /// highest generation, or `None` if neither page holds a valid
    /// superblock (a device that never completed a consistency point).
    ///
    /// # Errors
    ///
    /// Propagates device errors other than
    /// [`DeviceError::UnwrittenPage`] (an unwritten slot is simply skipped).
    pub fn read_latest(device: &dyn Device) -> Result<Option<Self>> {
        let mut best: Option<Superblock> = None;
        for &page in &SUPERBLOCK_PAGES {
            let buf = match device.read_page(page) {
                Ok(buf) => buf,
                Err(DeviceError::UnwrittenPage { .. }) => continue,
                Err(e) => return Err(e),
            };
            if let Some(sb) = Superblock::decode(&buf) {
                match &best {
                    Some(b) if b.generation >= sb.generation => {}
                    _ => best = Some(sb),
                }
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::device::{DeviceConfig, SimDisk};

    fn sb(generation: u64) -> Superblock {
        Superblock {
            generation,
            manifest_file: 7,
            manifest_len_bytes: 12_345,
            next_file: 8,
            next_page: 99,
            journal_file: 3,
            journal_start: 40,
            journal_pages: 16,
            journal_tail_page: 5,
            journal_tail_seq: 11,
            manifest_extents: vec![(2, 3), (10, 1)],
        }
    }

    #[test]
    fn encode_decode_roundtrips() {
        let s = sb(5);
        let buf = s.encode().unwrap();
        assert_eq!(buf.len(), PAGE_SIZE);
        assert_eq!(Superblock::decode(&buf), Some(s));
    }

    #[test]
    fn corruption_is_detected() {
        let s = sb(5);
        let mut buf = s.encode().unwrap();
        buf[40] ^= 0xff;
        assert_eq!(Superblock::decode(&buf), None);
        let mut bad_magic = s.encode().unwrap();
        bad_magic[0] = b'X';
        assert_eq!(Superblock::decode(&bad_magic), None);
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected() {
        let buf = sb(5).encode().unwrap();
        // The page checksum covers everything after the checksum field, and
        // a short buffer is rejected outright, so no prefix and no
        // single-bit corruption may decode — or panic.
        for len in 0..buf.len() {
            assert_eq!(
                Superblock::decode(&buf[..len]),
                None,
                "truncation to {len} bytes decoded"
            );
        }
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x80;
            assert_eq!(Superblock::decode(&bad), None, "flip at byte {i}");
        }
    }

    #[test]
    fn ping_pong_alternates_pages_and_latest_wins() {
        let d = SimDisk::new(DeviceConfig::free_latency());
        assert_eq!(Superblock::read_latest(&d).unwrap(), None);
        sb(1).write_to(&d).unwrap();
        assert_eq!(Superblock::read_latest(&d).unwrap(), Some(sb(1)));
        sb(2).write_to(&d).unwrap();
        assert_eq!(Superblock::read_latest(&d).unwrap(), Some(sb(2)));
        // Generation 1 lives at page 1, generation 2 at page 0.
        assert!(
            Superblock::decode(&d.read_page(1).unwrap())
                .unwrap()
                .generation
                == 1
        );
        assert!(
            Superblock::decode(&d.read_page(0).unwrap())
                .unwrap()
                .generation
                == 2
        );
    }

    #[test]
    fn torn_flip_falls_back_to_previous_generation() {
        let d = SimDisk::new(DeviceConfig::free_latency());
        sb(1).write_to(&d).unwrap();
        sb(2).write_to(&d).unwrap();
        // Generation 3 would overwrite generation 1's slot; corrupt it as a
        // torn write would.
        let mut torn = sb(3).encode().unwrap();
        torn[100] ^= 0x5a;
        d.write_page(SUPERBLOCK_PAGES[1], &torn).unwrap();
        assert_eq!(Superblock::read_latest(&d).unwrap(), Some(sb(2)));
    }

    #[test]
    fn torn_prefix_on_flip_slot_falls_back_to_previous_generation() {
        // A power cut mid-flip persists only a prefix of the new superblock
        // over the old content of slot g % 2. Generations 1 and 3 share that
        // slot and differ only in their generation (bytes 20..28) and
        // checksum (bytes 8..16) fields, so every prefix length that splits
        // the differing region must be rejected by the FNV checksum (or
        // decode as the old generation 1, for cuts before the checksum), and
        // read_latest must fall back to generation 2.
        for keep in [1usize, 8, 12, 16, 20, 24, 27] {
            let d = SimDisk::new(DeviceConfig::free_latency());
            sb(1).write_to(&d).unwrap();
            sb(2).write_to(&d).unwrap();
            let fresh = sb(3).encode().unwrap();
            d.tear_page(SUPERBLOCK_PAGES[1], &fresh, keep).unwrap();
            assert_eq!(
                Superblock::read_latest(&d).unwrap(),
                Some(sb(2)),
                "torn flip with {keep} persisted bytes must not advance the generation"
            );
            // A retried, complete flip wins again.
            d.write_page(SUPERBLOCK_PAGES[1], &fresh).unwrap();
            assert_eq!(Superblock::read_latest(&d).unwrap(), Some(sb(3)));
        }
        // Once every differing byte has persisted, the torn write is
        // indistinguishable from a completed one — and must validate.
        let d = SimDisk::new(DeviceConfig::free_latency());
        sb(1).write_to(&d).unwrap();
        sb(2).write_to(&d).unwrap();
        d.tear_page(SUPERBLOCK_PAGES[1], &sb(3).encode().unwrap(), 28)
            .unwrap();
        assert_eq!(Superblock::read_latest(&d).unwrap(), Some(sb(3)));
    }

    #[test]
    fn too_many_extents_overflow() {
        let mut s = sb(1);
        s.manifest_extents = (0..MAX_MANIFEST_EXTENTS as u64 + 1)
            .map(|i| (i * 2, 1))
            .collect();
        assert!(matches!(
            s.encode(),
            Err(DeviceError::SuperblockOverflow { .. })
        ));
        // Exactly the maximum fits.
        s.manifest_extents.pop();
        let buf = s.encode().unwrap();
        assert_eq!(Superblock::decode(&buf), Some(s));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
