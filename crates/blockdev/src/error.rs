use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, DeviceError>;

/// Errors returned by the simulated device and file layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A page was read before it was ever written.
    UnwrittenPage {
        /// The offending page number.
        page: u64,
    },
    /// A page number is beyond the configured device capacity.
    OutOfRange {
        /// The offending page number.
        page: u64,
        /// The device capacity in pages.
        capacity: u64,
    },
    /// A buffer passed to `read_page`/`write_page` was not exactly one page.
    BadBufferLength {
        /// The length that was supplied.
        got: usize,
    },
    /// The device has no free pages left to satisfy an allocation.
    OutOfSpace {
        /// Number of pages requested.
        requested: u64,
    },
    /// A file identifier does not name a live file.
    NoSuchFile {
        /// The offending file id.
        file: u64,
    },
    /// An offset is beyond the end of a virtual file.
    FileOffsetOutOfRange {
        /// The offending page offset within the file.
        offset: u64,
        /// The file length in pages.
        len: u64,
    },
    /// A fault injected through
    /// [`SimDisk::fail_writes_after`](crate::SimDisk::fail_writes_after),
    /// used by tests that exercise device-error recovery paths.
    InjectedFault {
        /// The page whose access was failed.
        page: u64,
    },
    /// The manifest file is fragmented over more extents than fit in a
    /// superblock page.
    SuperblockOverflow {
        /// Number of extents that needed recording.
        extents: usize,
    },
    /// The durable file-store state handed to
    /// [`FileStore::restore`](crate::FileStore::restore) is internally
    /// inconsistent (overlapping or out-of-range extents, duplicate file
    /// ids) — the manifest is corrupt.
    InvalidRestore {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnwrittenPage { page } => {
                write!(f, "page {page} was read before being written")
            }
            DeviceError::OutOfRange { page, capacity } => {
                write!(
                    f,
                    "page {page} is out of range for device of {capacity} pages"
                )
            }
            DeviceError::BadBufferLength { got } => {
                write!(f, "buffer of {got} bytes is not exactly one page")
            }
            DeviceError::OutOfSpace { requested } => {
                write!(f, "device out of space while allocating {requested} pages")
            }
            DeviceError::NoSuchFile { file } => write!(f, "no such virtual file: {file}"),
            DeviceError::FileOffsetOutOfRange { offset, len } => {
                write!(f, "offset {offset} is beyond file length {len}")
            }
            DeviceError::InjectedFault { page } => {
                write!(f, "injected device fault at page {page}")
            }
            DeviceError::SuperblockOverflow { extents } => {
                write!(
                    f,
                    "manifest fragmented over {extents} extents, too many for a superblock page"
                )
            }
            DeviceError::InvalidRestore { detail } => {
                write!(f, "invalid file-store restore state: {detail}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            DeviceError::UnwrittenPage { page: 3 },
            DeviceError::OutOfRange {
                page: 9,
                capacity: 4,
            },
            DeviceError::BadBufferLength { got: 12 },
            DeviceError::OutOfSpace { requested: 10 },
            DeviceError::NoSuchFile { file: 1 },
            DeviceError::FileOffsetOutOfRange { offset: 5, len: 2 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("page"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
