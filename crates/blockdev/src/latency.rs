use std::sync::atomic::{AtomicU64, Ordering};

/// A simple disk latency model: average seek + rotational delay for
/// non-sequential accesses plus a per-byte transfer cost.
///
/// The defaults approximate the 15K RPM SAS drive used in the paper's fsim
/// experiments (~60 MB/s sustained write throughput, ~2 ms average seek,
/// 2 ms average rotational latency at 15,000 RPM).
///
/// The model is intentionally crude — the experiments report *relative*
/// overheads and I/O counts, not absolute device times — but it preserves the
/// property the paper relies on: sequential run writes and sorted query runs
/// are much cheaper per page than random accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Cost of a head seek plus average rotational delay, nanoseconds.
    pub seek_ns: u64,
    /// Transfer time per byte, nanoseconds.
    pub ns_per_byte: f64,
    /// Accesses within this many pages of the previous access are treated as
    /// sequential (no seek charged).
    pub sequential_window: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // 2 ms seek + 2 ms rotational = 4 ms per random access;
        // 60 MB/s  =>  ~16.6 ns per byte  => ~68 us per 4 KB page transfer.
        LatencyModel {
            seek_ns: 4_000_000,
            ns_per_byte: 1e9 / (60.0 * 1024.0 * 1024.0),
            sequential_window: 1,
        }
    }
}

impl LatencyModel {
    /// A model with zero cost everywhere; useful for tests that only care
    /// about I/O counts.
    pub fn free() -> Self {
        LatencyModel {
            seek_ns: 0,
            ns_per_byte: 0.0,
            sequential_window: 1,
        }
    }

    /// An SSD-like model: tiny uniform access cost, no seek penalty.
    pub fn ssd() -> Self {
        LatencyModel {
            seek_ns: 20_000, // 20 us access latency
            ns_per_byte: 1e9 / (500.0 * 1024.0 * 1024.0),
            sequential_window: u64::MAX,
        }
    }

    /// Returns the cost in nanoseconds of accessing `bytes` bytes at `page`,
    /// given that the previous access touched `last_page`.
    pub fn access_ns(&self, last_page: Option<u64>, page: u64, bytes: usize) -> u64 {
        let transfer = (bytes as f64 * self.ns_per_byte) as u64;
        let seek = match last_page {
            Some(last) if page.abs_diff(last) <= self.sequential_window => 0,
            _ => self.seek_ns,
        };
        seek + transfer
    }

    /// Whether the model charges a seek for moving from `last_page` to `page`.
    pub fn is_seek(&self, last_page: Option<u64>, page: u64) -> bool {
        match last_page {
            Some(last) => page.abs_diff(last) > self.sequential_window,
            None => true,
        }
    }
}

/// A monotonically advancing simulated clock, in nanoseconds.
///
/// The device advances the clock by the latency of each access; higher layers
/// (e.g. the Backlog engine) additionally advance it by modeled CPU cost.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: AtomicU64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Current simulated time in whole seconds.
    pub fn now_secs(&self) -> u64 {
        self.now_ns() / 1_000_000_000
    }

    /// Advances the clock by `ns` nanoseconds and returns the new time.
    pub fn advance_ns(&self, ns: u64) -> u64 {
        self.now_ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Advances the clock by `micros` microseconds and returns the new time.
    pub fn advance_micros(&self, micros: u64) -> u64 {
        self.advance_ns(micros * 1_000)
    }

    /// Advances the clock to at least `ns` (no-op if it is already past)
    /// and returns the current time.
    ///
    /// Overlapped device operations retire through this: each completion
    /// carries its own finish time, and waiting on several of them moves the
    /// clock to the *latest* finish rather than summing their latencies —
    /// which is exactly what queue-depth parallelism buys.
    pub fn advance_to(&self, ns: u64) -> u64 {
        self.now_ns.fetch_max(ns, Ordering::Relaxed).max(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_access_skips_seek() {
        let m = LatencyModel::default();
        let first = m.access_ns(None, 100, 4096);
        let seq = m.access_ns(Some(100), 101, 4096);
        let random = m.access_ns(Some(100), 5_000, 4096);
        assert!(first > seq, "first access pays a seek");
        assert!(random > seq, "random access pays a seek");
        assert_eq!(random, first);
        assert!(!m.is_seek(Some(100), 101));
        assert!(m.is_seek(Some(100), 5_000));
        assert!(m.is_seek(None, 0));
    }

    #[test]
    fn free_model_is_zero_cost() {
        let m = LatencyModel::free();
        assert_eq!(m.access_ns(None, 0, 4096), 0);
        assert_eq!(m.access_ns(Some(0), 99999, 4096), 0);
    }

    #[test]
    fn ssd_has_no_distance_penalty() {
        let m = LatencyModel::ssd();
        let near = m.access_ns(Some(10), 11, 4096);
        let far = m.access_ns(Some(10), 1_000_000, 4096);
        assert_eq!(near, far);
    }

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let m = LatencyModel::default();
        let one = m.access_ns(Some(0), 1, 4096);
        let two = m.access_ns(Some(1), 2, 8192);
        assert!(two > one);
    }

    #[test]
    fn clock_advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(500);
        c.advance_micros(2);
        assert_eq!(c.now_ns(), 2_500);
        assert_eq!(c.now_secs(), 0);
        c.advance_ns(3_000_000_000);
        assert_eq!(c.now_secs(), 3);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::new();
        assert_eq!(c.advance_to(500), 500);
        assert_eq!(c.advance_to(200), 500, "never moves backwards");
        assert_eq!(c.now_ns(), 500);
        c.advance_ns(100);
        assert_eq!(c.advance_to(550), 600, "no-op when already past");
    }
}
