use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::error::Result;

/// The handle returned by a submitted device operation
/// ([`Device::submit_read`](crate::Device::submit_read) /
/// [`submit_write`](crate::Device::submit_write) /
/// [`submit_flush`](crate::Device::submit_flush)).
///
/// A completion carries three things:
///
/// * the **outcome** — `Ok` (with the page payload for reads) or the
///   [`DeviceError`](crate::DeviceError) the operation failed with. Errors
///   are delivered here, at the *completion*, not at the submit: a caller
///   that pipelines a dozen writes learns about a fault only when it waits.
/// * an optional **wall deadline** — when the device emulates latency, the
///   waiting thread parks until the operation's modeled finish time. Because
///   overlapping operations share the device's service slots, waiting on N
///   pipelined operations costs the *overlapped* time, not the sum.
/// * an internal **accounting ticket** that retires the operation (advances
///   the simulated clock to the operation's finish time and decrements the
///   device's in-flight count). The ticket runs exactly once — on the first
///   [`wait`](Completion::wait), or on drop if the completion is abandoned
///   (e.g. an aborted flush), so abandoning I/O never wedges the queue.
///
/// Waiting is idempotent: the outcome is retained, so calling
/// [`wait`](Completion::wait) twice returns the same result without sleeping
/// or double-retiring.
pub struct Completion {
    inner: Arc<Inner>,
}

/// The completing side of a [`Completion::pending`] pair: whoever services
/// the operation calls [`complete`](Completer::complete) /
/// [`complete_read`](Completer::complete_read) to publish the outcome and
/// wake waiters. [`SimDisk`](crate::SimDisk) itself never needs one (it
/// resolves operations at submit and encodes the latency in the wall
/// deadline), but external device implementations with real asynchrony do.
pub struct Completer {
    inner: Arc<Inner>,
}

struct Inner {
    state: Mutex<State>,
    done: Condvar,
}

/// `Option<Vec<u8>>`: `Some` for reads (the page payload), `None` for writes
/// and flushes.
type Outcome = Result<Option<Vec<u8>>>;

struct State {
    outcome: Option<Outcome>,
    wall_deadline: Option<Instant>,
    ticket: Option<Box<dyn FnOnce() + Send>>,
}

impl Completion {
    fn from_state(state: State) -> Self {
        Completion {
            inner: Arc::new(Inner {
                state: Mutex::new(state),
                done: Condvar::new(),
            }),
        }
    }

    /// An already-finished completion for a unit operation (write or flush).
    /// This is what the default [`Device`](crate::Device) submit shims
    /// return: a device without native submit support services the
    /// operation synchronously and hands back its result pre-resolved.
    pub fn ready(result: Result<()>) -> Self {
        Self::from_state(State {
            outcome: Some(result.map(|()| None)),
            wall_deadline: None,
            ticket: None,
        })
    }

    /// An already-finished completion carrying read data.
    pub fn ready_data(result: Result<Vec<u8>>) -> Self {
        Self::from_state(State {
            outcome: Some(result.map(Some)),
            wall_deadline: None,
            ticket: None,
        })
    }

    /// A finished operation whose latency is still outstanding: the outcome
    /// is known at submit, but the waiter must park until `wall_deadline`
    /// (when latency emulation is on) and then retire the accounting
    /// `ticket`. This is the shape every [`SimDisk`](crate::SimDisk) submit
    /// returns.
    pub(crate) fn scheduled(
        outcome: Outcome,
        wall_deadline: Option<Instant>,
        ticket: Box<dyn FnOnce() + Send>,
    ) -> Self {
        Self::from_state(State {
            outcome: Some(outcome),
            wall_deadline,
            ticket: Some(ticket),
        })
    }

    /// A genuinely-pending completion plus its [`Completer`]. For device
    /// implementations that resolve operations on another thread.
    pub fn pending() -> (Self, Completer) {
        let completion = Self::from_state(State {
            outcome: None,
            wall_deadline: None,
            ticket: None,
        });
        let completer = Completer {
            inner: completion.inner.clone(),
        };
        (completion, completer)
    }

    /// Whether the outcome is already published and any emulated latency has
    /// elapsed — i.e. whether [`wait`](Completion::wait) would return without
    /// blocking.
    pub fn is_complete(&self) -> bool {
        let st = self.inner.state.lock().expect("completion lock");
        st.outcome.is_some()
            && st
                .wall_deadline
                .map(|deadline| deadline <= Instant::now())
                .unwrap_or(true)
    }

    /// Blocks until the operation finishes and returns its status. For reads,
    /// prefer [`wait_read`](Completion::wait_read); `wait` discards the
    /// payload. Idempotent — a second wait returns the retained outcome.
    ///
    /// # Errors
    ///
    /// The operation's error, exactly as the sync API would have returned it.
    pub fn wait(&self) -> Result<()> {
        self.settle().map(|_| ())
    }

    /// Blocks until the operation finishes and returns the page payload.
    ///
    /// # Errors
    ///
    /// The operation's error, exactly as the sync API would have returned it.
    ///
    /// # Panics
    ///
    /// Panics if the completion belongs to a write or flush (no payload).
    pub fn wait_read(&self) -> Result<Vec<u8>> {
        self.settle()
            .map(|data| data.expect("wait_read on a write/flush completion"))
    }

    fn settle(&self) -> Outcome {
        let mut st = self.inner.state.lock().expect("completion lock");
        while st.outcome.is_none() {
            st = self.inner.done.wait(st).expect("completion lock");
        }
        let outcome = st.outcome.clone().expect("checked above");
        let deadline = st.wall_deadline.take();
        let ticket = st.ticket.take();
        drop(st);
        // Park outside the lock: an emulated-latency wait must stall only its
        // own thread, never a concurrent waiter or submitter.
        if let Some(deadline) = deadline {
            let now = Instant::now();
            if deadline > now {
                std::thread::sleep(deadline - now);
            }
        }
        if let Some(ticket) = ticket {
            ticket();
        }
        outcome
    }
}

impl Drop for Completion {
    /// An abandoned completion still retires its operation — without
    /// sleeping — so aborted pipelines (e.g. a consistency-point flush dying
    /// on one failed write while others are in flight) leave the device's
    /// in-flight accounting and simulated clock consistent.
    fn drop(&mut self) {
        let ticket = match self.inner.state.lock() {
            Ok(mut st) => st.ticket.take(),
            Err(_) => None,
        };
        if let Some(ticket) = ticket {
            ticket();
        }
    }
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().expect("completion lock");
        f.debug_struct("Completion")
            .field("resolved", &st.outcome.is_some())
            .field("ok", &st.outcome.as_ref().map(|outcome| outcome.is_ok()))
            .finish()
    }
}

impl Completer {
    /// Publishes the outcome of a unit operation and wakes every waiter.
    pub fn complete(self, result: Result<()>) {
        self.publish(result.map(|()| None));
    }

    /// Publishes the outcome of a read and wakes every waiter.
    pub fn complete_read(self, result: Result<Vec<u8>>) {
        self.publish(result.map(Some));
    }

    fn publish(self, outcome: Outcome) {
        let mut st = self.inner.state.lock().expect("completion lock");
        st.outcome = Some(outcome);
        drop(st);
        self.inner.done.notify_all();
    }
}

impl std::fmt::Debug for Completer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completer").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DeviceError;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn ready_completions_resolve_immediately() {
        let c = Completion::ready(Ok(()));
        assert!(c.is_complete());
        assert!(c.wait().is_ok());
        assert!(c.wait().is_ok(), "wait is idempotent");

        let c = Completion::ready_data(Ok(vec![7u8; 4]));
        assert_eq!(c.wait_read().unwrap(), vec![7u8; 4]);
        assert_eq!(c.wait_read().unwrap(), vec![7u8; 4]);
    }

    #[test]
    fn error_is_delivered_at_wait() {
        let c = Completion::ready(Err(DeviceError::InjectedFault { page: 3 }));
        assert_eq!(
            c.wait().unwrap_err(),
            DeviceError::InjectedFault { page: 3 }
        );
        assert_eq!(
            c.wait().unwrap_err(),
            DeviceError::InjectedFault { page: 3 },
            "errors are retained across waits"
        );
    }

    #[test]
    fn ticket_runs_exactly_once_on_wait() {
        let count = Arc::new(AtomicU64::new(0));
        let c = {
            let count = count.clone();
            Completion::scheduled(
                Ok(None),
                None,
                Box::new(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                }),
            )
        };
        c.wait().unwrap();
        c.wait().unwrap();
        drop(c);
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ticket_runs_on_drop_when_abandoned() {
        let count = Arc::new(AtomicU64::new(0));
        let c = {
            let count = count.clone();
            Completion::scheduled(
                Ok(None),
                // A far-future deadline: drop must NOT sleep on it.
                Some(Instant::now() + std::time::Duration::from_secs(60)),
                Box::new(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                }),
            )
        };
        let start = Instant::now();
        drop(c);
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pending_completion_blocks_until_completed() {
        let (completion, completer) = Completion::pending();
        assert!(!completion.is_complete());
        let completion = Arc::new(completion);
        let waiter = {
            let completion = completion.clone();
            std::thread::spawn(move || completion.wait_read())
        };
        completer.complete_read(Ok(vec![1, 2, 3]));
        assert_eq!(waiter.join().unwrap().unwrap(), vec![1, 2, 3]);
        assert!(completion.is_complete());
    }

    #[test]
    #[should_panic(expected = "wait_read on a write/flush completion")]
    fn wait_read_on_a_unit_completion_panics() {
        Completion::ready(Ok(())).wait_read().unwrap();
    }
}
