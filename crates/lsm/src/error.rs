use std::fmt;

use blockdev::DeviceError;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, LsmError>;

/// Errors returned by the LSM storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LsmError {
    /// The underlying simulated device reported an error.
    Device(DeviceError),
    /// A run file is structurally inconsistent (bad page header, truncated
    /// record area, or an internal pointer outside the file).
    CorruptRun {
        /// Human-readable detail of what was found.
        detail: String,
    },
    /// Records handed to a bulk loader were not sorted.
    UnsortedInput,
    /// A record type declared an encoded length that cannot fit in a page.
    RecordTooLarge {
        /// The declared encoded length.
        encoded_len: usize,
    },
}

impl fmt::Display for LsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsmError::Device(e) => write!(f, "device error: {e}"),
            LsmError::CorruptRun { detail } => write!(f, "corrupt run file: {detail}"),
            LsmError::UnsortedInput => write!(f, "bulk-load input records were not sorted"),
            LsmError::RecordTooLarge { encoded_len } => {
                write!(
                    f,
                    "record encoded length {encoded_len} exceeds a device page"
                )
            }
        }
    }
}

impl std::error::Error for LsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LsmError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for LsmError {
    fn from(e: DeviceError) -> Self {
        LsmError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_error_converts_and_sources() {
        let e: LsmError = DeviceError::NoSuchFile { file: 1 }.into();
        assert!(matches!(e, LsmError::Device(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("device error"));
    }

    #[test]
    fn display_messages() {
        assert!(LsmError::UnsortedInput.to_string().contains("not sorted"));
        assert!(LsmError::RecordTooLarge { encoded_len: 9000 }
            .to_string()
            .contains("9000"));
        assert!(LsmError::CorruptRun {
            detail: "bad".into()
        }
        .to_string()
        .contains("bad"));
    }
}
