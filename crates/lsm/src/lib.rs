//! A Stepped-Merge / LSM-tree storage engine for fixed-size sorted records.
//!
//! This crate implements the storage machinery that Backlog (the FAST'10
//! paper "Tracking Back References in a Write-Anywhere File System") layers
//! its back-reference tables on:
//!
//! * [`WriteStore`] — the in-memory balanced tree (*WS*, the LSM-tree's C0
//!   component) in which updates accumulate between consistency points.
//! * [`Run`] — an on-disk read store (*RS*) run: a densely packed B-tree
//!   built bottom-up (leaf file, then I1, I2, … up to a single root page) so
//!   that writing a run performs no disk reads.
//! * [`BloomFilter`] — a 4-hash-function filter per run so queries skip runs
//!   that cannot contain a block, with support for halving the filter when a
//!   run holds fewer records than the default sizing assumes.
//! * [`LsmTable`] — one logical table (`From`, `To` or `Combined` in the
//!   paper): a write store plus the set of Level-0 runs accumulated since the
//!   last maintenance pass, horizontally partitioned by block number, with a
//!   C-Store-style [`DeletionVector`] masking relocated records.
//! * [`merge`] — k-way merge of sorted record streams, used both by queries
//!   (merging the WS with every relevant run) and by database maintenance.
//!
//! The engine is deliberately generic over the record type (see [`Record`]);
//! the `backlog` crate instantiates it three times, once per table.
//!
//! # Ordering requirement
//!
//! Range queries and partitioning address records by their
//! [`partition_key`](Record::partition_key) (the physical block number in
//! Backlog). The engine requires that the record's `Ord` implementation sorts
//! by `partition_key()` first; [`LsmTable`] checks this invariant in debug
//! builds when records are inserted.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use blockdev::{DeviceConfig, FileStore, SimDisk};
//! use lsm::{LsmTable, Record, TableConfig};
//!
//! #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
//! struct Pair(u64, u64);
//!
//! impl Record for Pair {
//!     const ENCODED_LEN: usize = 16;
//!     fn encode(&self, buf: &mut [u8]) {
//!         buf[..8].copy_from_slice(&self.0.to_be_bytes());
//!         buf[8..16].copy_from_slice(&self.1.to_be_bytes());
//!     }
//!     fn decode(buf: &[u8]) -> Self {
//!         Pair(
//!             u64::from_be_bytes(buf[..8].try_into().unwrap()),
//!             u64::from_be_bytes(buf[8..16].try_into().unwrap()),
//!         )
//!     }
//!     fn partition_key(&self) -> u64 {
//!         self.0
//!     }
//! }
//!
//! # fn main() -> Result<(), lsm::LsmError> {
//! let disk = SimDisk::new_shared(DeviceConfig::free_latency());
//! let files = Arc::new(FileStore::new(disk));
//! let mut table = LsmTable::new(files, TableConfig::default());
//! table.insert(Pair(10, 1));
//! table.insert(Pair(20, 2));
//! table.flush_cp()?; // consistency point: write store becomes a Level-0 run
//! let hits = table.query_range(10, 10)?;
//! assert_eq!(hits, vec![Pair(10, 1)]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod bloom;
mod deletion_vector;
mod error;
pub mod merge;
mod partition;
mod record;
mod run;
mod store;
mod write_store;

pub use bloom::{BloomConfig, BloomFilter};
pub use deletion_vector::DeletionVector;
pub use error::{LsmError, Result};
pub use partition::Partitioning;
pub use record::Record;
pub use run::{Run, RunBuilder, RunMeta, RunRangeIter, RunStats};
pub use store::{
    FlushStats, LsmTable, MaintenanceStats, PartitionManifest, PartitionSnapshot, PreparedFlush,
    TableConfig, TableStats,
};
pub use write_store::{ShardedWriteStore, WriteShard, WriteStore};
