// Decode-surface module: recovery paths must return errors, never panic
// (enforced by `backlint` panic-free and audited by clippy here).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use blockdev::{Completion, FileId, FileMap, FileStore, PAGE_SIZE};

use crate::bloom::{BloomConfig, BloomFilter};
use crate::error::{LsmError, Result};
use crate::record::Record;

/// Number of bytes reserved at the start of every run page for the header
/// (`u16` record count, `u8` page kind, `u8` reserved).
const PAGE_HEADER: usize = 4;
const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;

/// Everything needed to reopen a [`Run`] from its (immutable) backing file
/// without scanning it: the B-tree geometry, the key bounds and the Bloom
/// filter contents. A consistency-point manifest records one `RunMeta` per
/// installed run; [`Run::open_from_meta`] turns it back into a live run in
/// O(extent-map) time, which is what makes
/// `BacklogEngine::open` independent of the database's record count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// The backing virtual file.
    pub file: FileId,
    /// Number of records stored in the run.
    pub records: u64,
    /// Number of leaf pages (pages `0..leaf_pages` of the file).
    pub leaf_pages: u64,
    /// Page offset of the B-tree root within the file (the last page).
    pub root_page: u64,
    /// Smallest partition key stored.
    pub min_key: u64,
    /// Largest partition key stored.
    pub max_key: u64,
    /// Number of hash functions of the run's Bloom filter.
    pub bloom_hashes: u32,
    /// Number of keys inserted into the Bloom filter.
    pub bloom_entries: u64,
    /// The Bloom filter's raw bit words.
    pub bloom_words: Vec<u64>,
}

/// Summary statistics for a single on-disk run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of records stored in the run.
    pub records: u64,
    /// Number of leaf pages.
    pub leaf_pages: u64,
    /// Total pages including internal index pages.
    pub total_pages: u64,
    /// Logical size in bytes (records × encoded length).
    pub record_bytes: u64,
}

/// An immutable on-disk read-store run: a densely packed B-tree built
/// bottom-up from a sorted record stream.
///
/// A run is the unit the paper calls an *RS file* (a Stepped-Merge Level-0
/// run, or the large merged run produced by database maintenance). Building
/// one performs only sequential page writes — the internal index level
/// `I(n+1)` is accumulated in memory while level `In` is written — so a
/// consistency-point flush needs no disk reads.
///
/// Each run carries an in-memory [`BloomFilter`] over the partition keys of
/// its records so queries can skip runs that cannot contain a block.
///
/// Runs are shared: the table hands out `Arc<Run>` snapshots to readers while
/// maintenance builds replacements off to the side. A replaced run is
/// [`retire`](Run::retire)d rather than deleted eagerly — its backing file is
/// freed when the last reference drops, so an in-flight query keeps reading
/// consistent pre-rebuild pages and the pages return to the free list the
/// moment nobody can observe them.
#[derive(Debug)]
pub struct Run<R: Record> {
    files: Arc<FileStore>,
    file: FileId,
    /// Cached extent map of the (immutable) run file, so page reads bypass
    /// the file store's lock and hash lookup entirely.
    map: FileMap,
    /// Page offset of the root page within the run file.
    root_page: u64,
    leaf_pages: u64,
    records: u64,
    min_key: u64,
    max_key: u64,
    bloom: BloomFilter,
    /// Set by [`retire`](Run::retire): delete the backing file when the run
    /// is dropped (i.e. when the last shared reference goes away).
    retired: AtomicBool,
    _marker: PhantomData<R>,
}

impl<R: Record> Run<R> {
    /// Builds a run from records that are already sorted (ascending, by the
    /// record's `Ord`). Returns `None` if `records` is empty.
    ///
    /// # Errors
    ///
    /// Returns [`LsmError::UnsortedInput`] if the input is not sorted and
    /// propagates device errors from writing run pages.
    pub fn build(
        files: &Arc<FileStore>,
        records: &[R],
        bloom_config: &BloomConfig,
    ) -> Result<Option<Self>> {
        if records.is_empty() {
            return Ok(None);
        }
        if R::ENCODED_LEN == 0 || R::ENCODED_LEN > PAGE_SIZE - PAGE_HEADER {
            return Err(LsmError::RecordTooLarge {
                encoded_len: R::ENCODED_LEN,
            });
        }
        if !records.is_sorted() {
            return Err(LsmError::UnsortedInput);
        }
        match Self::build_async(files, records, bloom_config)? {
            None => Ok(None),
            Some((run, pending)) => wait_pending(run, pending).map(Some),
        }
    }

    /// Like [`build`](Run::build), but returns the run together with the
    /// completions of its still-in-flight page writes instead of waiting for
    /// them. The run's structure (extent map, geometry, Bloom filter) is
    /// final; only the page payloads are still riding the device queue, so a
    /// caller building several runs back-to-back keeps the queue full across
    /// run boundaries. The caller must wait every completion (and delete the
    /// run if any fails) before treating the run as written.
    ///
    /// # Errors
    ///
    /// Returns [`LsmError::UnsortedInput`] if the input is not sorted and
    /// propagates submit-side device errors (allocation failures and any
    /// write completion reaped while bounding the pipeline depth).
    pub fn build_async(
        files: &Arc<FileStore>,
        records: &[R],
        bloom_config: &BloomConfig,
    ) -> Result<Option<(Self, Vec<Completion>)>> {
        if records.is_empty() {
            return Ok(None);
        }
        if R::ENCODED_LEN == 0 || R::ENCODED_LEN > PAGE_SIZE - PAGE_HEADER {
            return Err(LsmError::RecordTooLarge {
                encoded_len: R::ENCODED_LEN,
            });
        }
        if !records.is_sorted() {
            return Err(LsmError::UnsortedInput);
        }
        let mut builder =
            RunBuilder::new(files.clone(), bloom_config.clone_for_entries(records.len()));
        for r in records {
            if let Err(e) = builder.push(r) {
                builder.abandon();
                return Err(e);
            }
        }
        builder.finish_async().map(Some)
    }

    /// Captures the run's durable description for a consistency-point
    /// manifest (see [`RunMeta`]). The backing file's extents are the
    /// [`FileStore`]'s business and are recorded separately.
    pub fn meta(&self) -> RunMeta {
        RunMeta {
            file: self.file,
            records: self.records,
            leaf_pages: self.leaf_pages,
            root_page: self.root_page,
            min_key: self.min_key,
            max_key: self.max_key,
            bloom_hashes: self.bloom.hashes(),
            bloom_entries: self.bloom.entries() as u64,
            bloom_words: self.bloom.words().to_vec(),
        }
    }

    /// Reopens a run from a [`RunMeta`] recorded at the last consistency
    /// point. The backing file must already be live in `files` (restored via
    /// [`FileStore::restore`](blockdev::FileStore::restore)); no page is
    /// read — the extent-map snapshot is taken and the in-memory Bloom
    /// filter is rebuilt from the persisted words.
    ///
    /// # Errors
    ///
    /// Returns [`LsmError::CorruptRun`] if the file's length disagrees with
    /// the recorded geometry, and propagates file-store errors.
    pub fn open_from_meta(files: &Arc<FileStore>, meta: &RunMeta) -> Result<Self> {
        let map = files.map_file(meta.file)?;
        if map.len_pages() != meta.root_page + 1 || meta.leaf_pages > meta.root_page + 1 {
            return Err(LsmError::CorruptRun {
                detail: format!(
                    "{} holds {} pages but the manifest records root page {} ({} leaves)",
                    meta.file,
                    map.len_pages(),
                    meta.root_page,
                    meta.leaf_pages
                ),
            });
        }
        Ok(Run {
            files: files.clone(),
            file: meta.file,
            map,
            root_page: meta.root_page,
            leaf_pages: meta.leaf_pages,
            records: meta.records,
            min_key: meta.min_key,
            max_key: meta.max_key,
            bloom: crate::bloom::BloomFilter::from_parts(
                meta.bloom_words.clone(),
                meta.bloom_hashes,
                meta.bloom_entries as usize,
            ),
            retired: AtomicBool::new(false),
            _marker: PhantomData,
        })
    }

    /// This run's statistics.
    pub fn stats(&self) -> RunStats {
        RunStats {
            records: self.records,
            leaf_pages: self.leaf_pages,
            total_pages: self.total_pages(),
            record_bytes: self.records * R::ENCODED_LEN as u64,
        }
    }

    fn total_pages(&self) -> u64 {
        self.root_page + 1
    }

    /// Number of records in the run.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the run holds no records (never true for a built run).
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Smallest partition key stored in the run.
    pub fn min_key(&self) -> u64 {
        self.min_key
    }

    /// Largest partition key stored in the run.
    pub fn max_key(&self) -> u64 {
        self.max_key
    }

    /// The Bloom filter over this run's partition keys.
    pub fn bloom(&self) -> &BloomFilter {
        &self.bloom
    }

    /// The identifier of the backing virtual file.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Whether a query for partition keys `min..=max` needs to read this run,
    /// according to the key bounds and the Bloom filter.
    pub fn may_contain_range(&self, min: u64, max: u64) -> bool {
        if max < self.min_key || min > self.max_key {
            return false;
        }
        self.bloom.may_contain_range(min, max, 256)
    }

    /// Deletes the backing file immediately, consuming the run. Only valid
    /// for exclusively owned runs; shared runs are [`retire`](Self::retire)d
    /// instead so in-flight readers finish against intact pages.
    pub fn delete(self) -> Result<()> {
        // Disarm the drop hook: the file is gone after this call.
        self.retired.store(false, Ordering::Relaxed);
        self.files.delete(self.file)?;
        Ok(())
    }

    /// Marks the run retired: its backing file is deleted when the last
    /// reference drops. This is how [`LsmTable`](crate::LsmTable) swaps a
    /// partition — old runs are retired under the swap lock, readers holding
    /// a pre-swap snapshot keep every page they can see, and the space is
    /// reclaimed as soon as the final snapshot is dropped (immediately, when
    /// no query is in flight).
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    fn read_page(&self, page: u64) -> Result<Vec<u8>> {
        Ok(self.map.read_page(page)?)
    }

    /// Returns every record whose partition key lies in `min..=max`, in
    /// sorted order.
    ///
    /// # Errors
    ///
    /// Propagates device errors; reports [`LsmError::CorruptRun`] if the run
    /// pages are structurally invalid.
    pub fn scan_range(&self, min: u64, max: u64) -> Result<Vec<R>> {
        self.iter_range(min, max)?.collect()
    }

    /// Returns all records in the run, in sorted order.
    pub fn scan_all(&self) -> Result<Vec<R>> {
        self.scan_range(0, u64::MAX)
    }

    /// Visits records with partition keys in `min..=max` in order, stopping
    /// early when `visit` returns `false`.
    pub fn for_each_in_range<F: FnMut(R) -> bool>(
        &self,
        min: u64,
        max: u64,
        mut visit: F,
    ) -> Result<()> {
        for item in self.iter_range(min, max)? {
            if !visit(item?) {
                break;
            }
        }
        Ok(())
    }

    /// Returns a lazy iterator over the records whose partition keys lie in
    /// `min..=max`, in sorted order, reading leaf pages one at a time as the
    /// iterator advances.
    ///
    /// This is the streaming read path: a query merges these iterators (one
    /// per relevant run) with the write store instead of materializing each
    /// run's hits into an intermediate vector. Pages touched are exactly the
    /// B-tree descent to the first key `>= min` plus the leaves up to the
    /// first key `> max` — a narrow query over a large run reads a handful
    /// of pages no matter how many records the run holds.
    ///
    /// # Errors
    ///
    /// The initial descent errors are returned eagerly; page errors hit
    /// while iterating are yielded as `Err` items (the iterator then fuses).
    pub fn iter_range(&self, min: u64, max: u64) -> Result<RunRangeIter<'_, R>> {
        if max < self.min_key || min > self.max_key || self.records == 0 {
            return Ok(RunRangeIter {
                run: self,
                min,
                max,
                leaf: self.leaf_pages,
                index: 0,
                page: None,
                done: true,
            });
        }
        let (leaf, index) = self.find_first_ge(min)?;
        Ok(RunRangeIter {
            run: self,
            min,
            max,
            leaf,
            index,
            page: None,
            done: false,
        })
    }

    /// Locates the first leaf slot whose record partition key is `>= key`.
    /// Returns `(leaf_page, slot_index)`; the position may be one past the
    /// last record, in which case iteration terminates immediately.
    fn find_first_ge(&self, key: u64) -> Result<(u64, usize)> {
        // Descend from the root through internal pages.
        let mut page_no = self.root_page;
        loop {
            let page = self.read_page(page_no)?;
            let (kind, count) = parse_header(&page, R::ENCODED_LEN)?;
            match kind {
                KIND_LEAF => {
                    // Binary search within the leaf for the first record >= key.
                    let mut lo = 0usize;
                    let mut hi = count;
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        let start = PAGE_HEADER + mid * R::ENCODED_LEN;
                        let rec = R::decode(entry_bytes(&page, start, R::ENCODED_LEN, page_no)?);
                        if rec.partition_key() < key {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    return Ok((page_no, lo));
                }
                KIND_INTERNAL => {
                    let entry_len = R::ENCODED_LEN + 8;
                    // Find the last child whose separator key is strictly
                    // less than the search key (default: the first child).
                    // Using `<` rather than `<=` matters when duplicates of
                    // the search key span a child boundary: the run of equal
                    // keys may begin in the previous child, so we must start
                    // there and let the leaf scan walk forward.
                    let mut chosen = 0usize;
                    let mut lo = 0usize;
                    let mut hi = count;
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        let start = PAGE_HEADER + mid * entry_len;
                        let rec = R::decode(entry_bytes(&page, start, R::ENCODED_LEN, page_no)?);
                        if rec.partition_key() < key {
                            chosen = mid;
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    let start = PAGE_HEADER + chosen * entry_len;
                    let child_bytes: [u8; 8] =
                        entry_bytes(&page, start + R::ENCODED_LEN, 8, page_no)?
                            .try_into()
                            .map_err(|_| LsmError::CorruptRun {
                                detail: format!("malformed child pointer at page {page_no}"),
                            })?;
                    page_no = u64::from_be_bytes(child_bytes);
                }
                other => {
                    return Err(LsmError::CorruptRun {
                        detail: format!("unknown page kind {other} at page {page_no}"),
                    })
                }
            }
        }
    }
}

/// Waits out a freshly built run's in-flight page writes. On failure the run
/// file is deleted (the remaining completions are dropped first, which still
/// retires their device accounting) and the first error is returned.
fn wait_pending<R: Record>(run: Run<R>, pending: Vec<Completion>) -> Result<Run<R>> {
    let mut first_error = None;
    for completion in &pending {
        if let Err(e) = completion.wait() {
            first_error = Some(e);
            break;
        }
    }
    drop(pending);
    match first_error {
        Some(e) => {
            let _ = run.delete();
            Err(e.into())
        }
        None => Ok(run),
    }
}

impl<R: Record> Drop for Run<R> {
    fn drop(&mut self) {
        // Deferred deletion for retired runs: the swap marked the run dead,
        // the last reference reclaims its pages. A run that no longer exists
        // in the store (explicit `delete`) is a no-op here.
        if *self.retired.get_mut() {
            let _ = self.files.delete(self.file);
        }
    }
}

/// Lazy iterator over a key range of a [`Run`], created by
/// [`Run::iter_range`]. Yields records in sorted order, reading one leaf
/// page at a time.
#[derive(Debug)]
pub struct RunRangeIter<'a, R: Record> {
    run: &'a Run<R>,
    min: u64,
    max: u64,
    /// The leaf page the iterator is positioned on.
    leaf: u64,
    /// The slot within the current leaf.
    index: usize,
    /// The current leaf's payload and record count, loaded on demand.
    page: Option<(Vec<u8>, usize)>,
    done: bool,
}

impl<R: Record> RunRangeIter<'_, R> {
    fn load_page(&mut self) -> Result<bool> {
        let page = self.run.read_page(self.leaf)?;
        let (kind, count) = parse_header(&page, R::ENCODED_LEN)?;
        if kind != KIND_LEAF {
            return Err(LsmError::CorruptRun {
                detail: format!("expected leaf at page {}", self.leaf),
            });
        }
        self.page = Some((page, count));
        Ok(true)
    }
}

impl<R: Record> Iterator for RunRangeIter<'_, R> {
    type Item = Result<R>;

    fn next(&mut self) -> Option<Result<R>> {
        if self.done {
            return None;
        }
        loop {
            if self.page.is_none() {
                if self.leaf >= self.run.leaf_pages {
                    self.done = true;
                    return None;
                }
                if let Err(e) = self.load_page() {
                    self.done = true;
                    return Some(Err(e));
                }
            }
            let Some((page, count)) = self.page.as_ref() else {
                self.done = true;
                return Some(Err(LsmError::CorruptRun {
                    detail: format!("leaf page {} not loaded", self.leaf),
                }));
            };
            if self.index < *count {
                let start = PAGE_HEADER + self.index * R::ENCODED_LEN;
                let rec = match entry_bytes(page, start, R::ENCODED_LEN, self.leaf) {
                    Ok(bytes) => R::decode(bytes),
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                };
                self.index += 1;
                let key = rec.partition_key();
                if key > self.max {
                    self.done = true;
                    return None;
                }
                if key >= self.min {
                    return Some(Ok(rec));
                }
                // Keys below `min` can only appear in the first leaf (the
                // descent positions us at the first record >= min, but a run
                // of duplicates may force a conservative start); skip them.
            } else {
                self.leaf += 1;
                self.index = 0;
                self.page = None;
            }
        }
    }
}

trait CloneForEntries {
    fn clone_for_entries(&self, entries: usize) -> BloomSizing;
}

/// Internal helper carrying both the config and the intended entry count to
/// the builder.
#[derive(Debug, Clone)]
pub(crate) struct BloomSizing {
    config: BloomConfig,
    entries: usize,
}

impl CloneForEntries for BloomConfig {
    fn clone_for_entries(&self, entries: usize) -> BloomSizing {
        BloomSizing {
            config: *self,
            entries,
        }
    }
}

/// Incremental builder for a [`Run`].
///
/// Records must be pushed in sorted order. Leaf pages are written as they
/// fill; separator entries for the next index level are kept in memory, so
/// the build is a single sequential write pass.
#[derive(Debug)]
pub struct RunBuilder<R: Record> {
    files: Arc<FileStore>,
    file: FileId,
    bloom: BloomFilter,
    /// The leaf page currently being filled.
    leaf_buf: Vec<u8>,
    leaf_count_in_page: usize,
    /// (first record bytes, page offset) of each completed page at the level
    /// currently being produced.
    pending_level: Vec<(Vec<u8>, u64)>,
    pages_written: u64,
    records: u64,
    min_key: u64,
    max_key: u64,
    last: Option<R>,
    records_per_leaf: usize,
    entries_per_internal: usize,
    /// Completions of pipelined page writes not yet waited on, oldest first:
    /// the builder encodes page `N+1` while page `N` is still in flight.
    pending_io: VecDeque<Completion>,
    /// Bound on outstanding writes (2 × the device queue depth), so a huge
    /// run cannot accumulate unbounded completions.
    max_pending_io: usize,
}

impl<R: Record> RunBuilder<R> {
    pub(crate) fn new(files: Arc<FileStore>, sizing: BloomSizing) -> Self {
        let file = files.create().id();
        let records_per_leaf = (PAGE_SIZE - PAGE_HEADER) / R::ENCODED_LEN;
        let entries_per_internal = (PAGE_SIZE - PAGE_HEADER) / (R::ENCODED_LEN + 8);
        let max_pending_io = (files.device().queue_depth() * 2).max(2);
        RunBuilder {
            files,
            file,
            bloom: BloomFilter::for_entries(sizing.entries, &sizing.config),
            leaf_buf: new_page_buf(KIND_LEAF),
            leaf_count_in_page: 0,
            pending_level: Vec::new(),
            pages_written: 0,
            records: 0,
            min_key: u64::MAX,
            max_key: 0,
            last: None,
            records_per_leaf: records_per_leaf.max(1),
            entries_per_internal: entries_per_internal.max(2),
            pending_io: VecDeque::new(),
            max_pending_io,
        }
    }

    /// Creates a builder sized for `expected_records` records.
    pub fn with_capacity(
        files: Arc<FileStore>,
        bloom_config: &BloomConfig,
        expected_records: usize,
    ) -> Self {
        Self::new(files, bloom_config.clone_for_entries(expected_records))
    }

    /// Number of records pushed so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Appends the next record, which must not sort before the previous one.
    ///
    /// # Errors
    ///
    /// Returns [`LsmError::UnsortedInput`] on out-of-order input and
    /// propagates device errors.
    pub fn push(&mut self, record: &R) -> Result<()> {
        if let Some(last) = &self.last {
            if record < last {
                return Err(LsmError::UnsortedInput);
            }
        }
        self.last = Some(record.clone());
        let key = record.partition_key();
        self.min_key = self.min_key.min(key);
        self.max_key = self.max_key.max(key);
        self.bloom.insert(key);
        if self.leaf_count_in_page == self.records_per_leaf {
            self.flush_leaf()?;
        }
        if self.leaf_count_in_page == 0 {
            // Remember the first record of this leaf as its separator.
            self.pending_level
                .push((record.encode_to_vec(), self.pages_written));
        }
        let start = PAGE_HEADER + self.leaf_count_in_page * R::ENCODED_LEN;
        record.encode(&mut self.leaf_buf[start..start + R::ENCODED_LEN]);
        self.leaf_count_in_page += 1;
        self.records += 1;
        Ok(())
    }

    fn flush_leaf(&mut self) -> Result<()> {
        if self.leaf_count_in_page == 0 {
            return Ok(());
        }
        set_header(&mut self.leaf_buf, KIND_LEAF, self.leaf_count_in_page);
        let buf = std::mem::replace(&mut self.leaf_buf, new_page_buf(KIND_LEAF));
        self.append_pipelined(&buf)?;
        self.leaf_count_in_page = 0;
        Ok(())
    }

    /// Submits one page write without waiting for it, reaping the oldest
    /// outstanding completion first when the pipeline is full. Reaped errors
    /// surface here; the caller abandons the build on any error.
    fn append_pipelined(&mut self, buf: &[u8]) -> Result<()> {
        while self.pending_io.len() >= self.max_pending_io {
            let Some(oldest) = self.pending_io.pop_front() else {
                break;
            };
            oldest.wait()?;
        }
        let f = self.files.open(self.file)?;
        let (_, completion) = f.append_page_async(buf)?;
        self.pending_io.push_back(completion);
        self.pages_written += 1;
        Ok(())
    }

    /// Finishes the run: flushes the last leaf and writes the internal index
    /// levels bottom-up, returning the completed immutable [`Run`]. On error
    /// the partially written run file is deleted.
    ///
    /// # Errors
    ///
    /// Propagates device errors. An empty builder produces a run with zero
    /// records whose scans return nothing.
    pub fn finish(self) -> Result<Run<R>> {
        let (run, pending) = self.finish_async()?;
        wait_pending(run, pending)
    }

    /// Like [`finish`](Self::finish), but hands back the completions of the
    /// run's in-flight page writes instead of waiting: the next run's build
    /// starts while this run's tail pages are still being written. The
    /// caller must wait every completion (deleting the run on failure)
    /// before the run counts as durable on the device.
    ///
    /// # Errors
    ///
    /// Propagates submit-side errors; the partially written run file is
    /// deleted.
    pub fn finish_async(mut self) -> Result<(Run<R>, Vec<Completion>)> {
        let leaf_pages = match self.write_index() {
            Ok(leaves) => leaves,
            Err(e) => {
                self.abandon();
                return Err(e);
            }
        };
        let root_page = self.pages_written.saturating_sub(1);
        // Snapshot the extent map: the run file is immutable from here on,
        // so every future page read bypasses the file store.
        let map = match self.files.map_file(self.file) {
            Ok(map) => map,
            Err(e) => {
                self.abandon();
                return Err(e.into());
            }
        };
        // Right-size the Bloom filter if the run turned out much smaller than
        // the sizing estimate (the paper shrinks by halving).
        let cfg = BloomConfig::default();
        let ideal_bits = cfg.bits_for(self.records as usize);
        if ideal_bits < self.bloom.num_bits() {
            self.bloom.shrink_to(ideal_bits);
        }
        let pending: Vec<Completion> = self.pending_io.drain(..).collect();
        Ok((
            Run {
                files: self.files,
                file: self.file,
                map,
                root_page,
                leaf_pages,
                records: self.records,
                min_key: if self.records == 0 { 0 } else { self.min_key },
                max_key: self.max_key,
                bloom: self.bloom,
                retired: AtomicBool::new(false),
                _marker: PhantomData,
            },
            pending,
        ))
    }

    /// Like [`finish`](Self::finish), but a builder that received no records
    /// produces `None` instead of an empty run, deleting the (still empty)
    /// backing file. This is the form streaming rebuilds use: a partition
    /// whose records were all purged simply ends up with no run.
    ///
    /// # Errors
    ///
    /// Propagates device errors; the partially written run file is deleted.
    pub fn finish_nonempty(self) -> Result<Option<Run<R>>> {
        if self.records == 0 {
            self.abandon();
            return Ok(None);
        }
        self.finish().map(Some)
    }

    /// Flushes the last leaf and writes the internal index levels bottom-up,
    /// returning the number of leaf pages.
    fn write_index(&mut self) -> Result<u64> {
        self.flush_leaf()?;
        let leaf_pages = self.pages_written;
        // Build index levels until a level fits in one page.
        let mut level = std::mem::take(&mut self.pending_level);
        if level.is_empty() {
            // Empty run: write a single empty leaf so the root page exists.
            let buf = new_page_buf(KIND_LEAF);
            self.append_pipelined(&buf)?;
        }
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for chunk in level.chunks(self.entries_per_internal) {
                let mut buf = new_page_buf(KIND_INTERNAL);
                for (i, (key_bytes, child)) in chunk.iter().enumerate() {
                    let start = PAGE_HEADER + i * (R::ENCODED_LEN + 8);
                    buf[start..start + R::ENCODED_LEN].copy_from_slice(key_bytes);
                    buf[start + R::ENCODED_LEN..start + R::ENCODED_LEN + 8]
                        .copy_from_slice(&child.to_be_bytes());
                }
                set_header(&mut buf, KIND_INTERNAL, chunk.len());
                next_level.push((chunk[0].0.clone(), self.pages_written));
                self.append_pipelined(&buf)?;
            }
            level = next_level;
        }
        Ok(leaf_pages)
    }

    /// Abandons the build, deleting the partially written run file. Called on
    /// error paths so a failed consistency-point flush does not leak pages.
    pub fn abandon(self) {
        let _ = self.files.delete(self.file);
    }
}

fn new_page_buf(kind: u8) -> Vec<u8> {
    let mut buf = vec![0u8; PAGE_SIZE];
    buf[2] = kind;
    buf
}

fn set_header(buf: &mut [u8], kind: u8, count: usize) {
    buf[0..2].copy_from_slice(&(count as u16).to_be_bytes());
    buf[2] = kind;
    buf[3] = 0;
}

/// Parses a run-page header, validating the entry count against the page
/// length for the page's kind (`record_len` bytes per leaf entry, plus a
/// child pointer for internal entries). The count is a decoded u16 — on a
/// corrupt page it can claim up to 65535 entries, so it must never drive
/// slicing without this check. Unknown kinds pass through for the caller to
/// reject with page context.
fn parse_header(buf: &[u8], record_len: usize) -> Result<(u8, usize)> {
    let (head, kind) = match (buf.get(0..2), buf.get(2)) {
        (Some(head), Some(&kind)) => (head, kind),
        _ => {
            return Err(LsmError::CorruptRun {
                detail: "page shorter than header".into(),
            })
        }
    };
    let count = u16::from_be_bytes([head[0], head[1]]) as usize;
    let entry_len = match kind {
        KIND_LEAF => record_len,
        KIND_INTERNAL => record_len + 8,
        _ => return Ok((kind, count)),
    };
    if count
        .checked_mul(entry_len)
        .is_none_or(|body| PAGE_HEADER + body > buf.len())
    {
        return Err(LsmError::CorruptRun {
            detail: format!(
                "page header claims {count} entries of {entry_len} bytes, more \
                 than fit in {} bytes",
                buf.len()
            ),
        });
    }
    Ok((kind, count))
}

/// Bounds-checked view of one entry's bytes. With the header count
/// validated a miss is impossible, but a corrupt page must surface as an
/// error, never as a slice panic mid-scan.
fn entry_bytes(page: &[u8], start: usize, len: usize, page_no: u64) -> Result<&[u8]> {
    page.get(start..start + len)
        .ok_or_else(|| LsmError::CorruptRun {
            detail: format!("entry out of page bounds at page {page_no}"),
        })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::record::test_support::TestRec;
    use blockdev::{Device, DeviceConfig, SimDisk};

    fn files() -> Arc<FileStore> {
        Arc::new(FileStore::new(SimDisk::new_shared(
            DeviceConfig::free_latency(),
        )))
    }

    fn build(records: &[TestRec]) -> (Arc<FileStore>, Run<TestRec>) {
        let fs = files();
        let run = Run::build(&fs, records, &BloomConfig::default())
            .unwrap()
            .unwrap();
        (fs, run)
    }

    #[test]
    fn empty_input_builds_nothing() {
        let fs = files();
        assert!(Run::<TestRec>::build(&fs, &[], &BloomConfig::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn small_run_roundtrips() {
        let recs: Vec<TestRec> = (0..10u64).map(|k| TestRec::new(k * 2, k)).collect();
        let (_fs, run) = build(&recs);
        assert_eq!(run.len(), 10);
        assert_eq!(run.min_key(), 0);
        assert_eq!(run.max_key(), 18);
        assert_eq!(run.scan_all().unwrap(), recs);
    }

    #[test]
    fn corrupt_page_header_is_an_error_not_a_panic() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let fs = Arc::new(FileStore::new(disk.clone()));
        let recs: Vec<TestRec> = (0..10u64).map(|k| TestRec::new(k * 2, k)).collect();
        let run = Run::build(&fs, &recs, &BloomConfig::default())
            .unwrap()
            .unwrap();
        let meta = fs.file_meta(run.file_id()).unwrap();
        assert_eq!(meta.len_pages, 1, "test assumes a single-page run");
        let page_no = meta.extents[0].0;
        let good = disk.read_page(page_no).unwrap();

        // A flipped count claiming 65535 entries: an unvalidated count
        // would drive slicing straight off the end of the page.
        let mut bad = good.clone();
        bad[0] = 0xff;
        bad[1] = 0xff;
        disk.write_page(page_no, &bad).unwrap();
        assert!(matches!(run.scan_all(), Err(LsmError::CorruptRun { .. })));

        // A flipped kind byte is rejected with page context.
        let mut bad = good.clone();
        bad[2] = 7;
        disk.write_page(page_no, &bad).unwrap();
        assert!(matches!(run.scan_all(), Err(LsmError::CorruptRun { .. })));

        // The pristine page still scans.
        disk.write_page(page_no, &good).unwrap();
        assert_eq!(run.scan_all().unwrap(), recs);
    }

    #[test]
    fn large_run_spans_multiple_levels_and_scans_correctly() {
        // 16-byte records, ~255 per leaf; 10,000 records => ~40 leaves =>
        // at least one internal level.
        let recs: Vec<TestRec> = (0..10_000u64)
            .map(|k| TestRec::new(k, k ^ 0xdead))
            .collect();
        let (_fs, run) = build(&recs);
        let stats = run.stats();
        assert!(stats.leaf_pages > 1);
        assert!(stats.total_pages > stats.leaf_pages, "has internal pages");
        assert_eq!(run.scan_all().unwrap().len(), 10_000);
        // Point query in the middle.
        assert_eq!(
            run.scan_range(5_000, 5_000).unwrap(),
            vec![TestRec::new(5_000, 5_000 ^ 0xdead)]
        );
        // Range query.
        let r = run.scan_range(9_990, 10_005).unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].key, 9_990);
    }

    #[test]
    fn range_query_with_duplicate_partition_keys() {
        let mut recs = Vec::new();
        for k in 0..100u64 {
            for p in 0..5u64 {
                recs.push(TestRec::new(k, p));
            }
        }
        recs.sort();
        let (_fs, run) = build(&recs);
        let hits = run.scan_range(50, 50).unwrap();
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|r| r.key == 50));
    }

    #[test]
    fn duplicate_keys_spanning_leaf_boundaries_are_all_found() {
        // 255 records fit per leaf. Put 200 records with smaller keys first
        // so that the run of 300 duplicates of key 1000 straddles a leaf
        // boundary, then verify a point range query returns every duplicate.
        let mut recs: Vec<TestRec> = (0..200u64).map(|k| TestRec::new(k, 0)).collect();
        recs.extend((0..300u64).map(|p| TestRec::new(1_000, p)));
        recs.extend((0..200u64).map(|k| TestRec::new(2_000 + k, 0)));
        recs.sort();
        let (_fs, run) = build(&recs);
        assert!(run.stats().leaf_pages >= 2);
        let hits = run.scan_range(1_000, 1_000).unwrap();
        assert_eq!(
            hits.len(),
            300,
            "every duplicate across the leaf boundary is returned"
        );
        // And a range that starts mid-duplicates still works.
        assert_eq!(run.scan_range(999, 1_001).unwrap().len(), 300);
        assert_eq!(run.scan_range(0, 199).unwrap().len(), 200);
    }

    #[test]
    fn unsorted_input_is_rejected() {
        let fs = files();
        let recs = vec![TestRec::new(5, 0), TestRec::new(1, 0)];
        assert_eq!(
            Run::build(&fs, &recs, &BloomConfig::default()).unwrap_err(),
            LsmError::UnsortedInput
        );
        let mut b = RunBuilder::<TestRec>::with_capacity(files(), &BloomConfig::default(), 10);
        b.push(&TestRec::new(5, 0)).unwrap();
        assert_eq!(
            b.push(&TestRec::new(1, 0)).unwrap_err(),
            LsmError::UnsortedInput
        );
    }

    #[test]
    fn building_needs_no_reads() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let fs = Arc::new(FileStore::new(disk.clone()));
        let recs: Vec<TestRec> = (0..5_000u64).map(|k| TestRec::new(k, 0)).collect();
        let _run = Run::build(&fs, &recs, &BloomConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(
            disk.stats().snapshot().page_reads,
            0,
            "bottom-up build reads nothing"
        );
        assert!(disk.stats().snapshot().page_writes > 0);
    }

    #[test]
    fn bloom_filter_rejects_absent_ranges() {
        let recs: Vec<TestRec> = (0..1000u64).map(|k| TestRec::new(k * 1000, 0)).collect();
        let (_fs, run) = build(&recs);
        assert!(run.may_contain_range(0, 0));
        assert!(
            !run.may_contain_range(2_000_000, 3_000_000),
            "outside key bounds"
        );
        // Inside bounds but between stored keys: the bloom filter usually
        // rejects it (allow the rare false positive).
        let rejected = (0..50)
            .filter(|i| !run.may_contain_range(i * 1000 + 500, i * 1000 + 501))
            .count();
        assert!(
            rejected > 25,
            "bloom filter should reject most absent point ranges"
        );
    }

    #[test]
    fn scan_outside_bounds_is_empty_without_io() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let fs = Arc::new(FileStore::new(disk.clone()));
        let recs: Vec<TestRec> = (10..20u64).map(|k| TestRec::new(k, 0)).collect();
        let run = Run::build(&fs, &recs, &BloomConfig::default())
            .unwrap()
            .unwrap();
        let before = disk.stats().snapshot();
        assert!(run.scan_range(100, 200).unwrap().is_empty());
        assert_eq!(disk.stats().snapshot().page_reads, before.page_reads);
    }

    #[test]
    fn for_each_early_stop() {
        let recs: Vec<TestRec> = (0..1000u64).map(|k| TestRec::new(k, 0)).collect();
        let (_fs, run) = build(&recs);
        let mut seen = 0;
        run.for_each_in_range(0, u64::MAX, |_| {
            seen += 1;
            seen < 10
        })
        .unwrap();
        assert_eq!(seen, 10);
    }

    #[test]
    fn delete_frees_file() {
        let fs = files();
        let recs: Vec<TestRec> = (0..100u64).map(|k| TestRec::new(k, 0)).collect();
        let run = Run::build(&fs, &recs, &BloomConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(fs.file_count(), 1);
        run.delete().unwrap();
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn retired_run_outlives_readers_then_frees_its_file() {
        let fs = files();
        let recs: Vec<TestRec> = (0..100u64).map(|k| TestRec::new(k, 0)).collect();
        let run = Arc::new(
            Run::build(&fs, &recs, &BloomConfig::default())
                .unwrap()
                .unwrap(),
        );
        let reader = run.clone();
        run.retire();
        drop(run);
        // A reader snapshot still holds the run: the file must survive and
        // stay fully readable.
        assert_eq!(fs.file_count(), 1, "reader keeps the retired run alive");
        assert_eq!(reader.scan_all().unwrap(), recs);
        drop(reader);
        assert_eq!(fs.file_count(), 0, "last reference reclaims the file");
    }

    #[test]
    fn unretired_drop_leaks_nothing_but_keeps_file() {
        // Dropping a run without retiring it must not delete the file (the
        // table owns that decision); explicit delete still works.
        let fs = files();
        let recs: Vec<TestRec> = (0..10u64).map(|k| TestRec::new(k, 0)).collect();
        let run = Run::build(&fs, &recs, &BloomConfig::default())
            .unwrap()
            .unwrap();
        let id = run.file_id();
        drop(run);
        assert_eq!(fs.file_count(), 1);
        fs.delete(id).unwrap();
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn build_pipelines_page_writes_through_the_device_queue() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency().with_queue_depth(8));
        let fs = Arc::new(FileStore::new(disk.clone()));
        let recs: Vec<TestRec> = (0..5_000u64).map(|k| TestRec::new(k, 0)).collect();
        let run = Run::build(&fs, &recs, &BloomConfig::default())
            .unwrap()
            .unwrap();
        let s = disk.stats().snapshot();
        assert!(
            s.max_in_flight > 1,
            "builder keeps pages in flight (saw {})",
            s.max_in_flight
        );
        assert!(s.completed_async_ops > 0);
        assert_eq!(run.scan_all().unwrap().len(), 5_000, "payloads intact");
    }

    #[test]
    fn build_async_hands_back_inflight_writes() {
        let fs = files();
        let recs: Vec<TestRec> = (0..1_000u64).map(|k| TestRec::new(k, 0)).collect();
        let (run, pending) = Run::build_async(&fs, &recs, &BloomConfig::default())
            .unwrap()
            .unwrap();
        assert!(!pending.is_empty(), "tail pages ride the queue");
        for c in &pending {
            c.wait().unwrap();
        }
        assert_eq!(run.scan_all().unwrap(), recs);
        // Empty input still builds nothing.
        assert!(
            Run::<TestRec>::build_async(&fs, &[], &BloomConfig::default())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn failed_inflight_write_deletes_the_run_in_finish() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency().with_queue_depth(8));
        let fs = Arc::new(FileStore::new(disk.clone()));
        let recs: Vec<TestRec> = (0..1_000u64).map(|k| TestRec::new(k, 0)).collect();
        // Let a few pages through, then fail: the fault lands on an
        // in-flight completion, not the submit.
        disk.fail_writes_after(2);
        let err = Run::build(&fs, &recs, &BloomConfig::default()).unwrap_err();
        assert!(matches!(err, LsmError::Device(_)), "{err:?}");
        disk.clear_write_fault();
        assert_eq!(fs.file_count(), 0, "failed build leaks no file");
    }

    #[test]
    fn stats_are_consistent() {
        let recs: Vec<TestRec> = (0..1000u64).map(|k| TestRec::new(k, 0)).collect();
        let (_fs, run) = build(&recs);
        let s = run.stats();
        assert_eq!(s.records, 1000);
        assert_eq!(s.record_bytes, 1000 * 16);
        assert!(s.total_pages >= s.leaf_pages);
    }
}
