use std::collections::BTreeSet;

use crate::record::Record;

/// A C-Store-style deletion vector: the set of records that should be hidden
/// from read-store results without rewriting the run files.
///
/// The paper uses this when maintenance operations relocate blocks (e.g.
/// defragmentation or volume shrinking): rather than modifying the immutable
/// RS, the affected back-reference records are added to the deletion vector
/// and filtered out of query results "in a manner that is completely opaque
/// to query processing logic". When the vector grows large the table can be
/// rewritten with the deleted tuples dropped
/// (see [`LsmTable::rewrite_purging_deletions`](crate::LsmTable::rewrite_purging_deletions)).
#[derive(Debug, Clone)]
pub struct DeletionVector<R: Record> {
    deleted: BTreeSet<R>,
}

impl<R: Record> Default for DeletionVector<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Record> DeletionVector<R> {
    /// Creates an empty deletion vector.
    pub fn new() -> Self {
        DeletionVector {
            deleted: BTreeSet::new(),
        }
    }

    /// Marks a record as deleted. Returns `true` if it was not already marked.
    pub fn insert(&mut self, record: R) -> bool {
        self.deleted.insert(record)
    }

    /// Whether the record is marked deleted.
    pub fn contains(&self, record: &R) -> bool {
        self.deleted.contains(record)
    }

    /// Number of records marked deleted.
    pub fn len(&self) -> usize {
        self.deleted.len()
    }

    /// Whether no records are marked deleted.
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty()
    }

    /// Removes every mark, typically after the table has been rewritten.
    pub fn clear(&mut self) {
        self.deleted.clear();
    }

    /// Drops the marks whose partition key falls in `min..=max`, keeping the
    /// rest. Partition-incremental rewrites use this: a rebuilt partition has
    /// consumed its deletion marks in-stream, but marks belonging to other
    /// partitions must survive until those partitions are rewritten too.
    pub fn clear_key_range(&mut self, min: u64, max: u64) {
        self.deleted
            .retain(|r| !(min..=max).contains(&r.partition_key()));
    }

    /// Returns a vector holding the marks of `self` that are not in
    /// `consumed`. Rebuild commits use this to drop exactly the marks the
    /// rebuild applied in-stream while keeping marks added concurrently.
    pub fn difference(&self, consumed: &DeletionVector<R>) -> DeletionVector<R> {
        DeletionVector {
            deleted: self
                .deleted
                .difference(&consumed.deleted)
                .cloned()
                .collect(),
        }
    }

    /// Iterates over the marked records in sorted order (for persisting the
    /// vector in a consistency-point manifest).
    pub fn iter(&self) -> impl Iterator<Item = &R> + '_ {
        self.deleted.iter()
    }

    /// Filters a sorted result set in place, removing marked records.
    pub fn filter(&self, records: &mut Vec<R>) {
        if self.deleted.is_empty() {
            return;
        }
        records.retain(|r| !self.deleted.contains(r));
    }

    /// Approximate memory footprint in bytes (the paper notes the vector is
    /// "usually small enough to be entirely cached in memory").
    pub fn approx_bytes(&self) -> usize {
        self.deleted.len() * (std::mem::size_of::<R>() + 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_support::TestRec;

    #[test]
    fn insert_and_contains() {
        let mut dv = DeletionVector::new();
        assert!(dv.insert(TestRec::new(1, 1)));
        assert!(!dv.insert(TestRec::new(1, 1)));
        assert!(dv.contains(&TestRec::new(1, 1)));
        assert!(!dv.contains(&TestRec::new(1, 2)));
        assert_eq!(dv.len(), 1);
    }

    #[test]
    fn filter_removes_only_marked() {
        let mut dv = DeletionVector::new();
        dv.insert(TestRec::new(2, 0));
        let mut results = vec![TestRec::new(1, 0), TestRec::new(2, 0), TestRec::new(3, 0)];
        dv.filter(&mut results);
        assert_eq!(results, vec![TestRec::new(1, 0), TestRec::new(3, 0)]);
    }

    #[test]
    fn empty_vector_filter_is_noop() {
        let dv: DeletionVector<TestRec> = DeletionVector::new();
        let mut results = vec![TestRec::new(1, 0)];
        dv.filter(&mut results);
        assert_eq!(results.len(), 1);
        assert!(dv.is_empty());
    }

    #[test]
    fn clear_key_range_is_partition_scoped() {
        let mut dv = DeletionVector::new();
        dv.insert(TestRec::new(5, 0));
        dv.insert(TestRec::new(15, 0));
        dv.insert(TestRec::new(25, 0));
        dv.clear_key_range(10, 19);
        assert_eq!(dv.len(), 2);
        assert!(dv.contains(&TestRec::new(5, 0)));
        assert!(!dv.contains(&TestRec::new(15, 0)));
        assert!(dv.contains(&TestRec::new(25, 0)));
    }

    #[test]
    fn clear_resets() {
        let mut dv = DeletionVector::new();
        dv.insert(TestRec::new(5, 5));
        assert!(dv.approx_bytes() > 0);
        dv.clear();
        assert!(dv.is_empty());
    }
}
