/// A fixed-size, totally ordered record stored by the LSM engine.
///
/// Backlog's `From`, `To` and `Combined` tuples implement this trait; the
/// engine itself never inspects record fields beyond the
/// [`partition_key`](Record::partition_key).
///
/// # Contract
///
/// * `encode` must write exactly [`ENCODED_LEN`](Record::ENCODED_LEN) bytes
///   and `decode(encode(r)) == r` must hold for every record.
/// * The `Ord` implementation must order records by `partition_key()` first;
///   range queries and horizontal partitioning rely on this.
/// * `ENCODED_LEN` must be greater than zero and no larger than a device page
///   minus the leaf-page header (checked when a table is created).
pub trait Record: Clone + Ord + Send + Sync + 'static {
    /// Exact size of the encoded form in bytes.
    const ENCODED_LEN: usize;

    /// Serializes the record into `buf`, which is exactly
    /// [`ENCODED_LEN`](Record::ENCODED_LEN) bytes long.
    fn encode(&self, buf: &mut [u8]);

    /// Deserializes a record from `buf`, which is exactly
    /// [`ENCODED_LEN`](Record::ENCODED_LEN) bytes long.
    fn decode(buf: &[u8]) -> Self;

    /// The key used for horizontal partitioning, Bloom-filter membership and
    /// range addressing. In Backlog this is the physical block number.
    fn partition_key(&self) -> u64;

    /// Encodes the record into a freshly allocated vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = vec![0u8; Self::ENCODED_LEN];
        self.encode(&mut buf);
        buf
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::Record;

    /// A small record used throughout the crate's unit tests:
    /// `(partition key, payload)`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub struct TestRec {
        pub key: u64,
        pub payload: u64,
    }

    impl TestRec {
        pub fn new(key: u64, payload: u64) -> Self {
            TestRec { key, payload }
        }
    }

    impl Record for TestRec {
        const ENCODED_LEN: usize = 16;

        fn encode(&self, buf: &mut [u8]) {
            buf[..8].copy_from_slice(&self.key.to_be_bytes());
            buf[8..16].copy_from_slice(&self.payload.to_be_bytes());
        }

        fn decode(buf: &[u8]) -> Self {
            TestRec {
                key: u64::from_be_bytes(buf[..8].try_into().unwrap()),
                payload: u64::from_be_bytes(buf[8..16].try_into().unwrap()),
            }
        }

        fn partition_key(&self) -> u64 {
            self.key
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::TestRec;
    use super::*;

    #[test]
    fn roundtrip() {
        let r = TestRec::new(42, 7);
        let bytes = r.encode_to_vec();
        assert_eq!(bytes.len(), TestRec::ENCODED_LEN);
        assert_eq!(TestRec::decode(&bytes), r);
    }

    #[test]
    fn ordering_is_by_partition_key_first() {
        let a = TestRec::new(1, 100);
        let b = TestRec::new(2, 0);
        assert!(a < b);
        assert!(a.partition_key() < b.partition_key());
    }
}
