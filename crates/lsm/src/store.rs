use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use blockdev::{Completion, FileStore};
use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::bloom::BloomConfig;
use crate::deletion_vector::DeletionVector;
use crate::error::{LsmError, Result};
use crate::merge::{KWayMerge, TryKWayMerge};
use crate::partition::Partitioning;
use crate::record::Record;
use crate::run::{Run, RunBuilder, RunMeta, RunRangeIter, RunStats};
use crate::write_store::{ShardedWriteStore, WriteShard};

/// One partition's durable description inside a consistency-point manifest:
/// the installed runs (oldest first) and the deletion-vector contents.
/// Captured by [`PartitionSnapshot::manifest`] and replayed by
/// [`LsmTable::open_from_manifest`].
#[derive(Debug, Clone)]
pub struct PartitionManifest<R: Record> {
    /// The partition's runs, oldest first.
    pub runs: Vec<RunMeta>,
    /// The partition's deletion-vector records, sorted.
    pub deletions: Vec<R>,
}

/// Configuration for an [`LsmTable`].
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Human-readable table name used in diagnostics (`"From"`, `"To"`, ...).
    pub name: String,
    /// Bloom filter sizing for this table's runs.
    pub bloom: BloomConfig,
    /// Horizontal partitioning of runs by partition key.
    pub partitioning: Partitioning,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            name: "table".to_owned(),
            bloom: BloomConfig::default(),
            partitioning: Partitioning::single(),
        }
    }
}

impl TableConfig {
    /// Creates a config with the given diagnostic name and defaults otherwise.
    pub fn named(name: impl Into<String>) -> Self {
        TableConfig {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Sets the partitioning scheme.
    pub fn with_partitioning(mut self, partitioning: Partitioning) -> Self {
        self.partitioning = partitioning;
        self
    }

    /// Sets the Bloom filter configuration.
    pub fn with_bloom(mut self, bloom: BloomConfig) -> Self {
        self.bloom = bloom;
        self
    }
}

/// Statistics returned by [`LsmTable::flush_cp`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Records written out of the write store.
    pub records_flushed: u64,
    /// Level-0 runs created (one per non-empty partition).
    pub runs_created: u32,
    /// Total pages written for the new runs.
    pub pages_written: u64,
}

/// Statistics returned by maintenance operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Runs that existed before the operation.
    pub runs_before: u32,
    /// Runs that exist after the operation.
    pub runs_after: u32,
    /// Disk-resident records before.
    pub records_before: u64,
    /// Disk-resident records after.
    pub records_after: u64,
    /// Pages occupied after the operation.
    pub pages_after: u64,
}

/// Point-in-time statistics for a table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Records buffered in the write store.
    pub ws_records: u64,
    /// Number of on-disk runs.
    pub run_count: u32,
    /// Records stored across all runs.
    pub disk_records: u64,
    /// Pages occupied by all runs (leaves plus index pages).
    pub disk_pages: u64,
    /// Logical bytes of disk-resident records.
    pub disk_record_bytes: u64,
    /// Memory held by Bloom filters, in bytes.
    pub bloom_bytes: u64,
    /// Records currently masked by the deletion vector.
    pub deleted_records: u64,
}

/// The swappable per-partition state: an immutable, shared run list plus the
/// deletion marks for keys in the partition. Readers clone the two `Arc`s
/// under the partition's read lock (a [`PartitionSnapshot`]); rebuilds
/// replace them wholesale under the write lock, so a swap is atomic with
/// respect to every reader and never blocks on in-flight page I/O.
#[derive(Debug)]
struct PartitionState<R: Record> {
    /// On-disk runs, oldest first.
    runs: Arc<Vec<Arc<Run<R>>>>,
    /// Deletion marks whose partition key falls in this partition.
    deletions: Arc<DeletionVector<R>>,
}

impl<R: Record> PartitionState<R> {
    fn empty() -> Self {
        PartitionState {
            runs: Arc::new(Vec::new()),
            deletions: Arc::new(DeletionVector::new()),
        }
    }
}

/// An immutable point-in-time view of one partition's disk state: the run
/// list and deletion vector that were installed when the snapshot was taken.
///
/// Snapshots are what make concurrent reads and rebuilds safe: a query or a
/// maintenance pass captures the partition once (two `Arc` clones under a
/// read lock) and then streams from it without further coordination. A
/// concurrent [`commit_rebuilt_partition`](LsmTable::commit_rebuilt_partition)
/// swap does not disturb the snapshot — replaced runs are retired, not
/// deleted, and their pages survive until the last snapshot drops.
#[derive(Debug, Clone)]
pub struct PartitionSnapshot<R: Record> {
    key_range: (u64, u64),
    runs: Arc<Vec<Arc<Run<R>>>>,
    deletions: Arc<DeletionVector<R>>,
}

impl<R: Record> PartitionSnapshot<R> {
    /// The runs visible in this snapshot, oldest first.
    pub fn runs(&self) -> &[Arc<Run<R>>] {
        &self.runs
    }

    /// The deletion vector visible in this snapshot.
    pub fn deletions(&self) -> &DeletionVector<R> {
        &self.deletions
    }

    /// The inclusive key range `[min, max]` the partition covers.
    pub fn key_range(&self) -> (u64, u64) {
        self.key_range
    }

    /// Number of runs in the snapshot.
    pub fn run_count(&self) -> u32 {
        self.runs.len() as u32
    }

    /// Disk-resident records across the snapshot's runs (before
    /// deletion-vector masking). Streaming rebuilds use this to size the
    /// replacement run's Bloom filter without scanning anything.
    pub fn disk_records(&self) -> u64 {
        self.runs.iter().map(|r| r.len()).sum()
    }

    /// Captures this snapshot's durable description for a consistency-point
    /// manifest. The caller must keep the snapshot alive until the manifest
    /// is durably on disk: the snapshot's `Arc`s are what stop a concurrent
    /// rebuild commit from deleting the referenced run files mid-write.
    pub fn manifest(&self) -> PartitionManifest<R> {
        PartitionManifest {
            runs: self.runs.iter().map(|r| r.meta()).collect(),
            deletions: self.deletions.iter().cloned().collect(),
        }
    }

    /// Returns a lazy, sorted stream over the snapshot's records, with the
    /// deletion vector applied record by record. This is the read stage of
    /// the streaming rebuild pipeline: each run contributes one lazy
    /// [`Run::iter_range`] cursor and a [`TryKWayMerge`] interleaves them, so
    /// the peak memory held is one leaf page per run plus the merge heap —
    /// never the partition's record set.
    ///
    /// # Errors
    ///
    /// Descent errors surface immediately; page errors hit mid-stream are
    /// yielded as `Err` items, after which the stream fuses.
    pub fn iter_disk(&self) -> Result<impl Iterator<Item = Result<R>> + '_> {
        let (min, max) = self.key_range;
        let mut sources: Vec<RunRangeIter<'_, R>> = Vec::new();
        for run in self.runs.iter() {
            sources.push(run.iter_range(min, max)?);
        }
        let deletions = &self.deletions;
        Ok(TryKWayMerge::new(sources).filter(move |item| match item {
            Ok(rec) => deletions.is_empty() || !deletions.contains(rec),
            Err(_) => true,
        }))
    }
}

/// A consistency-point flush that has been built but not yet installed (see
/// [`LsmTable::prepare_flush`]): every non-empty shard's records are staged
/// — still query-visible in the write store — and their Level-0 runs are
/// fully on the device, but no partition's run list has changed.
///
/// Exactly one of two things happens next:
///
/// * [`commit`](Self::commit) installs each run and unstages its records in
///   one per-partition atomic step (the moment a durable CP's superblock
///   flip is known to be on disk);
/// * dropping the handle (or calling [`abort`](Self::abort)) deletes the
///   built run files and returns every staged record to its shard — the
///   table is exactly as if the flush had never been attempted.
///
/// The handle holds the table's flush lock for its whole lifetime, and its
/// [`run_metas`](Self::run_metas) pin the built runs so a consistency-point
/// manifest can reference them before they are visible to queries.
#[must_use = "a prepared flush must be committed, or dropped to abort"]
#[derive(Debug)]
pub struct PreparedFlush<'a, R: Record> {
    table: &'a LsmTable<R>,
    _flush: MutexGuard<'a, ()>,
    /// Partitions whose shards were staged (restored on abort).
    staged: Vec<u32>,
    /// The built-but-uninstalled runs, ascending by partition.
    built: Vec<(u32, Run<R>)>,
    /// In-flight run-page writes still to be waited on (empty once
    /// [`wait_io`](Self::wait_io) or [`take_pending_io`](Self::take_pending_io)
    /// has run, and always empty for handles from
    /// [`prepare_flush`](LsmTable::prepare_flush)).
    pending_io: Vec<Completion>,
    stats: FlushStats,
    done: bool,
}

impl<R: Record> PreparedFlush<'_, R> {
    /// The flush totals (records staged, runs built, pages written) as
    /// [`commit`](Self::commit) will report them.
    pub fn stats(&self) -> FlushStats {
        self.stats
    }

    /// Whether the prepared flush holds no runs at all (nothing was staged).
    pub fn is_empty(&self) -> bool {
        self.built.is_empty() && self.staged.is_empty()
    }

    /// The durable descriptions of the built runs, ascending by partition —
    /// what a consistency-point manifest appends to each partition's
    /// installed-run list (newest last) so the flushed records survive a
    /// crash that lands after the superblock flip but before any in-memory
    /// commit.
    pub fn run_metas(&self) -> Vec<(u32, RunMeta)> {
        self.built
            .iter()
            .map(|(pidx, run)| (*pidx, run.meta()))
            .collect()
    }

    /// Waits for every in-flight run-page write submitted by
    /// [`prepare_flush_async`](LsmTable::prepare_flush_async). Must succeed
    /// (or the pending I/O must be drained through
    /// [`take_pending_io`](Self::take_pending_io) and waited externally)
    /// before [`commit`](Self::commit).
    ///
    /// # Errors
    ///
    /// The first failing write's error; remaining in-flight writes are
    /// abandoned (their device accounting still retires). Drop the handle
    /// afterwards to abort — built runs are deleted and staged records
    /// restored.
    pub fn wait_io(&mut self) -> Result<()> {
        let pending = std::mem::take(&mut self.pending_io);
        for completion in pending {
            completion.wait()?;
        }
        Ok(())
    }

    /// Hands the in-flight write completions to the caller, leaving the
    /// handle with none pending. A durable consistency point uses this to
    /// merge all three tables' flush I/O (plus its manifest appends) into a
    /// single wait-then-barrier step instead of draining each table's queue
    /// separately.
    pub fn take_pending_io(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.pending_io)
    }

    /// Installs every built run and unstages its records, partition by
    /// partition: under the partition lock + shard lock, the deletion marks
    /// deferred for staged records enter the partition's deletion vector and
    /// the run is appended, in the same atomic step — a concurrent query
    /// observes each record in the write store or in the new run, never in
    /// both and never in neither. Infallible: no device I/O happens here.
    ///
    /// # Panics
    ///
    /// If in-flight writes from
    /// [`prepare_flush_async`](LsmTable::prepare_flush_async) were neither
    /// waited ([`wait_io`](Self::wait_io)) nor drained
    /// ([`take_pending_io`](Self::take_pending_io)) — committing runs whose
    /// pages may still fail would break the all-or-nothing flush contract.
    pub fn commit(mut self) -> FlushStats {
        assert!(
            self.pending_io.is_empty(),
            "PreparedFlush::commit with in-flight writes still pending"
        );
        let built = std::mem::take(&mut self.built);
        let mut with_runs: Vec<u32> = Vec::with_capacity(built.len());
        for (pidx, run) in built {
            with_runs.push(pidx);
            // Lock order (partition state, then shard) matches the query
            // path.
            let mut st = self.table.partitions[pidx as usize].write();
            let mut shard = self.table.ws.lock_shard(pidx);
            let deferred = shard.commit_flush();
            if !deferred.is_empty() {
                let dv = Arc::make_mut(&mut st.deletions);
                for mark in deferred {
                    dv.insert(mark);
                }
            }
            Arc::make_mut(&mut st.runs).push(Arc::new(run));
        }
        // Defensive: a staged shard without a built run cannot happen today
        // (staging hands back only non-empty record sets, and building a
        // non-empty set always yields a run), but if it ever does, its
        // deferred deletion marks still belong in the partition's vector.
        for &pidx in &self.staged {
            if with_runs.contains(&pidx) {
                continue;
            }
            let mut st = self.table.partitions[pidx as usize].write();
            let mut shard = self.table.ws.lock_shard(pidx);
            let deferred = shard.commit_flush();
            if !deferred.is_empty() {
                let dv = Arc::make_mut(&mut st.deletions);
                for mark in deferred {
                    dv.insert(mark);
                }
            }
        }
        self.done = true;
        self.stats
    }

    /// Explicitly abandons the prepared flush (equivalent to dropping it):
    /// built run files are deleted and staged records return to their
    /// shards.
    pub fn abort(self) {
        // Drop does the work.
    }
}

impl<R: Record> Drop for PreparedFlush<'_, R> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        for (_, run) in std::mem::take(&mut self.built) {
            let _ = run.delete();
        }
        for &pidx in &self.staged {
            self.table.ws.lock_shard(pidx).restore_flush();
        }
    }
}

/// One logical LSM table: an in-memory write store plus the Level-0 runs
/// accumulated since the last maintenance pass, horizontally partitioned by
/// block number.
///
/// Backlog instantiates three of these — `From`, `To` and `Combined` — on a
/// shared [`FileStore`]. The table is deliberately unaware of the semantics
/// of its records; joining `From` and `To`, structural inheritance and
/// version masking all live in the `backlog` crate.
///
/// # Concurrency model
///
/// The whole mutation surface takes `&self`; the table is safe to share
/// across writer, reader, flusher and maintenance threads simultaneously.
///
/// *Writes.* The write store is sharded by partition
/// ([`ShardedWriteStore`]): [`insert`](Self::insert),
/// [`ws_remove`](Self::ws_remove) and [`mark_deleted`](Self::mark_deleted)
/// lock only the touched partition's shard, so callbacks from different
/// threads serialize only when they hit the same partition (contended
/// acquisitions are counted in the device's
/// [`lock_contentions`](blockdev::IoStatsSnapshot::lock_contentions)).
///
/// *Flushes.* [`flush_cp`](Self::flush_cp) is build-then-swap per partition:
/// each shard's records are *staged* (query-visible, treated as durable by
/// removals), the replacement run is built with no locks held, and a commit
/// under the partition lock + shard lock installs the run and unstages the
/// records in one atomic step — a concurrent query sees every record in
/// exactly one place. On a device error the staged records return to the
/// shard, so a failed consistency point loses nothing.
/// [`flush_cp_parallel`](Self::flush_cp_parallel) fans independent partition
/// flushes onto scoped worker threads.
///
/// *Reads and rebuilds.* On-disk state is shared and swappable: each
/// partition holds an `Arc<Vec<Arc<Run>>>` run list plus its deletion marks
/// behind a read/write lock. Reads clone the `Arc`s and stream from
/// immutable runs; rebuilds build replacements off to the side and
/// [`commit_rebuilt_partition`](Self::commit_rebuilt_partition) swaps in the
/// replacement while *preserving* state that arrived after the rebuild's
/// snapshot (Level-0 runs appended by a racing flush, deletion marks added
/// by a racing relocation). Replaced runs are retired, not deleted — their
/// files are reclaimed when the last snapshot drops — so readers always
/// observe a partition as fully old or fully new.
///
/// Rebuilding the *same* partition from two threads at once is not
/// supported (both rebuilds would survive the other's commit and duplicate
/// the partition's records); callers serialize per-partition rebuilds, as
/// the engine's maintenance scheduler does.
#[derive(Debug)]
pub struct LsmTable<R: Record> {
    files: Arc<FileStore>,
    config: TableConfig,
    ws: ShardedWriteStore<R>,
    /// Swappable per-partition disk state.
    partitions: Vec<RwLock<PartitionState<R>>>,
    /// Serializes whole-table flushes against each other (two overlapping
    /// flushes of one partition would build duplicate runs from the same
    /// staged records). Writers and queries never take this lock.
    flush_lock: Mutex<()>,
}

impl<R: Record> LsmTable<R> {
    /// Creates an empty table whose runs will be stored in `files`.
    pub fn new(files: Arc<FileStore>, config: TableConfig) -> Self {
        let partitions = config.partitioning.partition_count() as usize;
        LsmTable {
            ws: ShardedWriteStore::new(config.partitioning, files.device().clone()),
            files,
            config,
            partitions: (0..partitions)
                .map(|_| RwLock::new(PartitionState::empty()))
                .collect(),
            flush_lock: Mutex::new(()),
        }
    }

    /// Rebuilds a table from the per-partition state a consistency-point
    /// manifest recorded. The backing run files must already be live in
    /// `files` (see [`FileStore::restore`](blockdev::FileStore::restore));
    /// each run is reopened from its [`RunMeta`] without reading a page, and
    /// the deletion vectors are repopulated. The write store starts empty —
    /// its contents were volatile by definition and are recovered, if at
    /// all, by replaying the host's journal.
    ///
    /// # Errors
    ///
    /// Returns [`LsmError::CorruptRun`] if `parts` does not have exactly one
    /// entry per configured partition, a run's geometry disagrees with its
    /// file, or a record is filed under the wrong partition.
    pub fn open_from_manifest(
        files: Arc<FileStore>,
        config: TableConfig,
        parts: Vec<PartitionManifest<R>>,
    ) -> Result<Self> {
        let partition_count = config.partitioning.partition_count() as usize;
        if parts.len() != partition_count {
            return Err(LsmError::CorruptRun {
                detail: format!(
                    "table {} manifest has {} partitions, config says {partition_count}",
                    config.name,
                    parts.len()
                ),
            });
        }
        let mut partitions = Vec::with_capacity(partition_count);
        for (pidx, part) in parts.into_iter().enumerate() {
            let (min, max) = config.partitioning.key_range(pidx as u32);
            let mut runs = Vec::with_capacity(part.runs.len());
            for meta in &part.runs {
                if meta.records > 0 && (meta.min_key < min || meta.max_key > max) {
                    return Err(LsmError::CorruptRun {
                        detail: format!(
                            "run {} keys [{}, {}] escape partition {pidx} [{min}, {max}]",
                            meta.file, meta.min_key, meta.max_key
                        ),
                    });
                }
                runs.push(Arc::new(Run::open_from_meta(&files, meta)?));
            }
            let mut deletions = DeletionVector::new();
            for rec in part.deletions {
                let key = rec.partition_key();
                if key < min || key > max {
                    return Err(LsmError::CorruptRun {
                        detail: format!(
                            "deletion mark for key {key} filed under partition {pidx} [{min}, {max}]"
                        ),
                    });
                }
                deletions.insert(rec);
            }
            partitions.push(RwLock::new(PartitionState {
                runs: Arc::new(runs),
                deletions: Arc::new(deletions),
            }));
        }
        Ok(LsmTable {
            ws: ShardedWriteStore::new(config.partitioning, files.device().clone()),
            files,
            config,
            partitions,
            flush_lock: Mutex::new(()),
        })
    }

    /// The table configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// The file store holding this table's runs.
    pub fn files(&self) -> &Arc<FileStore> {
        &self.files
    }

    /// Buffers a record in its partition's write-store shard.
    pub fn insert(&self, record: R) {
        self.ws.insert(record);
    }

    /// Removes an exact record from the write store (proactive pruning).
    /// Returns `true` if the record was buffered (records staged by an
    /// in-flight flush count as durable and report `false`).
    pub fn ws_remove(&self, record: &R) -> bool {
        self.ws.remove(record)
    }

    /// Whether the exact record is currently buffered in the write store.
    pub fn ws_contains(&self, record: &R) -> bool {
        self.ws.contains(record)
    }

    /// Number of records buffered in the write store.
    pub fn ws_len(&self) -> usize {
        self.ws.len()
    }

    /// Approximate memory footprint of the buffered records in bytes.
    pub fn ws_approx_bytes(&self) -> usize {
        self.ws.approx_bytes()
    }

    /// Locks and returns partition `pidx`'s write-store shard, so a caller
    /// applying a batch of operations to one partition pays for the lock
    /// acquisition once (the engine's `WriteBatch` path).
    ///
    /// # Panics
    ///
    /// Panics if `pidx` is out of range.
    pub fn ws_shard(&self, pidx: u32) -> MutexGuard<'_, WriteShard<R>> {
        self.ws.lock_shard(pidx)
    }

    /// Number of on-disk runs across all partitions.
    pub fn run_count(&self) -> u32 {
        self.partitions
            .iter()
            .map(|p| p.read().runs.len() as u32)
            .sum()
    }

    /// Number of horizontal partitions (from the table's
    /// [`Partitioning`](crate::Partitioning)).
    pub fn partition_count(&self) -> u32 {
        self.config.partitioning.partition_count()
    }

    /// Number of on-disk runs in one partition.
    ///
    /// # Panics
    ///
    /// Panics if `pidx` is out of range.
    pub fn partition_run_count(&self, pidx: u32) -> u32 {
        self.partitions[pidx as usize].read().runs.len() as u32
    }

    /// Disk-resident records stored in partition `pidx` (before
    /// deletion-vector masking).
    ///
    /// # Panics
    ///
    /// Panics if `pidx` is out of range.
    pub fn partition_disk_records(&self, pidx: u32) -> u64 {
        self.partitions[pidx as usize]
            .read()
            .runs
            .iter()
            .map(|r| r.len())
            .sum()
    }

    /// Takes an immutable snapshot of partition `pidx`: two `Arc` clones
    /// under the partition's read lock. All read paths — queries, scans and
    /// the streaming rebuild pipeline — operate on snapshots, which is what
    /// lets them run concurrently with partition swaps.
    ///
    /// # Panics
    ///
    /// Panics if `pidx` is out of range.
    pub fn partition_snapshot(&self, pidx: u32) -> PartitionSnapshot<R> {
        let st = self.partitions[pidx as usize].read();
        PartitionSnapshot {
            key_range: self.config.partitioning.key_range(pidx),
            runs: st.runs.clone(),
            deletions: st.deletions.clone(),
        }
    }

    /// Marks a record as deleted without touching the run files
    /// (C-Store-style deletion vector).
    ///
    /// A record still in the write store's active set is simply removed. A
    /// record *staged* by an in-flight flush is unstaged at once and its
    /// mark deferred: it enters the partition's deletion vector in the same
    /// atomic step that installs the flush's run, so the vector never holds
    /// a mark for a record that is not yet on disk (a rebuild snapshot
    /// taken mid-flush would otherwise treat such a mark as consumed and
    /// resurrect the record). A durable record is masked directly.
    pub fn mark_deleted(&self, record: R) {
        let pidx = self
            .config
            .partitioning
            .partition_of(record.partition_key());
        // Lock order (partition state, then shard) matches the query and
        // flush-commit paths.
        let mut st = self.partitions[pidx as usize].write();
        let mut shard = self.ws.lock_shard(pidx);
        if shard.remove(&record) || shard.defer_mark(&record) {
            return;
        }
        Arc::make_mut(&mut st.deletions).insert(record);
    }

    /// Records currently masked by deletion vectors, across all partitions.
    pub fn deleted_records(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.read().deletions.len() as u64)
            .sum()
    }

    /// Flushes the write store into one new Level-0 run per non-empty
    /// partition. Called at every consistency point. Equivalent to
    /// [`flush_cp_parallel`](Self::flush_cp_parallel) with one thread.
    ///
    /// # Errors
    ///
    /// Propagates device errors. On error, every record that did not make it
    /// into a completed run returns to the write store, so a failed
    /// consistency point loses nothing: the caller can retry the flush once
    /// the device recovers (runs that were completed before the error stay
    /// on disk and are already visible to queries).
    pub fn flush_cp(&self) -> Result<FlushStats> {
        self.flush_cp_parallel(1)
    }

    /// Flushes the write store with independent per-partition flushes fanned
    /// out across `threads` scoped worker threads (clamped to
    /// `1..=non-empty partitions`; with one thread the partition loop runs
    /// inline on the calling thread, in ascending partition order).
    ///
    /// Equivalent to [`prepare_flush`](Self::prepare_flush) followed by an
    /// immediate [`PreparedFlush::commit`]. The whole flush is all-or-nothing:
    /// on a device error *no* partition keeps a new run — every staged record
    /// returns to its shard, exactly as if the flush had never been attempted.
    ///
    /// # Errors
    ///
    /// Propagates the first device error any worker hits.
    pub fn flush_cp_parallel(&self, threads: usize) -> Result<FlushStats> {
        Ok(self.prepare_flush(threads)?.commit())
    }

    /// Stages the write store and builds one Level-0 run per non-empty
    /// partition **without installing anything**: the staged records stay
    /// query-visible in their shards, the partitions' run lists are
    /// untouched, and the built run pages sit on the device referenced only
    /// by the returned handle.
    ///
    /// The caller either [`commit`](PreparedFlush::commit)s the prepared
    /// flush — installing every run and unstaging its records in one
    /// per-partition atomic step — or drops it, which aborts: built run
    /// files are deleted and every staged record returns to its shard. This
    /// split is what lets a durable consistency point make its *entire*
    /// flush conditional on the manifest and superblock reaching the device:
    /// committing only after the flip means a failed CP leaves the table
    /// exactly as it was, preserving the invariant that a same-interval
    /// add/remove pair is always pruned in the write store (a half-installed
    /// flush would strand the add in a run where the remove can no longer
    /// reach it, and the pair would later resurrect as a live reference).
    ///
    /// The handle holds the table's flush lock, so concurrent flushes block
    /// until it is committed or dropped.
    ///
    /// # Errors
    ///
    /// Propagates the first device error any worker hits; the table is left
    /// untouched (staged records restored, partial runs deleted).
    pub fn prepare_flush(&self, threads: usize) -> Result<PreparedFlush<'_, R>> {
        let mut prep = self.prepare_flush_async(threads)?;
        if let Err(e) = prep.wait_io() {
            drop(prep); // abort: delete built runs, restore staged shards
            return Err(e);
        }
        Ok(prep)
    }

    /// Like [`prepare_flush`](Self::prepare_flush), but returns **without
    /// waiting for the built runs' page writes to complete**: every page of
    /// every run has been *submitted* to the device (the returned handle's
    /// [`PreparedFlush::take_pending_io`] holds the completions), so the
    /// device services the whole flush at full queue depth while the caller
    /// does other work — stages the next table's flush, encodes a manifest —
    /// before waiting once for everything.
    ///
    /// Device errors can therefore surface in two places: at submit (returned
    /// here, table restored as in `prepare_flush`) or on a completion
    /// (surfaced by [`PreparedFlush::wait_io`]; drop the handle to abort).
    ///
    /// # Errors
    ///
    /// The first error raised *at submission*; the table is left untouched.
    pub fn prepare_flush_async(&self, threads: usize) -> Result<PreparedFlush<'_, R>> {
        let flush = self.flush_lock.lock();
        // Stage every shard up front; staged records stay query-visible in
        // the shard until the prepared flush commits.
        let mut work: Vec<(u32, Vec<R>)> = Vec::new();
        for pidx in 0..self.ws.shard_count() {
            let staged = self.ws.lock_shard(pidx).stage();
            if !staged.is_empty() {
                work.push((pidx, staged));
            }
        }
        let staged: Vec<u32> = work.iter().map(|&(pidx, _)| pidx).collect();
        let records_flushed: u64 = work.iter().map(|(_, recs)| recs.len() as u64).sum();
        let built: Mutex<Vec<(u32, Run<R>)>> = Mutex::new(Vec::new());
        let pending: Mutex<Vec<Completion>> = Mutex::new(Vec::new());
        let first_error: Mutex<Option<LsmError>> = Mutex::new(None);
        let next = AtomicUsize::new(0);
        let worker = || loop {
            if first_error.lock().is_some() {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some((pidx, records)) = work.get(i) else {
                break;
            };
            match Run::build_async(&self.files, records, &self.config.bloom) {
                Ok(Some((run, io))) => {
                    built.lock().push((*pidx, run));
                    pending.lock().extend(io);
                }
                Ok(None) => {}
                Err(e) => {
                    first_error.lock().get_or_insert(e);
                    break;
                }
            }
        };
        if !work.is_empty() {
            let threads = threads.clamp(1, work.len());
            if threads == 1 {
                worker();
            } else {
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(worker);
                    }
                });
            }
        }
        if let Some(e) = first_error.lock().take() {
            // Dropping the collected completions retires their device
            // accounting without delivering results to anyone.
            drop(pending.into_inner());
            for (_, run) in built.into_inner() {
                let _ = run.delete();
            }
            for &pidx in &staged {
                self.ws.lock_shard(pidx).restore_flush();
            }
            return Err(e);
        }
        let mut built = built.into_inner();
        built.sort_by_key(|entry| entry.0);
        let stats = FlushStats {
            records_flushed,
            runs_created: built.len() as u32,
            pages_written: built.iter().map(|(_, run)| run.stats().total_pages).sum(),
        };
        Ok(PreparedFlush {
            table: self,
            _flush: flush,
            staged,
            built,
            pending_io: pending.into_inner(),
            stats,
            done: false,
        })
    }

    /// Returns every record (write store and runs) whose partition key falls
    /// in `min..=max`, sorted, with deletion-vector records removed.
    ///
    /// The read path streams and borrows only partition snapshots: each
    /// relevant run contributes a lazy [`iter_range`](Run::iter_range)
    /// cursor, the write store contributes its range iterator, and a
    /// [`KWayMerge`] produces the result directly, applying the deletion
    /// vector record by record — no per-source materialization, and no
    /// interference with a rebuild swapping partitions underneath.
    ///
    /// # Errors
    ///
    /// Propagates device errors from reading run pages.
    pub fn query_range(&self, min: u64, max: u64) -> Result<Vec<R>> {
        self.merge_streams(min, max, true)
    }

    /// Returns all records in the table (write store and runs), sorted, with
    /// deleted records removed.
    pub fn scan_all(&self) -> Result<Vec<R>> {
        self.query_range(0, u64::MAX)
    }

    /// Returns only the disk-resident records (ignores the write store),
    /// sorted, with deleted records removed. Database maintenance operates on
    /// this view: write-store records always survive maintenance untouched.
    pub fn scan_disk(&self) -> Result<Vec<R>> {
        self.merge_streams(0, u64::MAX, false)
    }

    /// The shared streaming read path behind [`query_range`](Self::query_range)
    /// and [`scan_disk`](Self::scan_disk).
    fn merge_streams(&self, min: u64, max: u64, include_ws: bool) -> Result<Vec<R>> {
        // Capture the relevant partitions first; everything below streams
        // from these immutable snapshots. (Each partition is individually
        // consistent; records never move between partitions, so a query
        // spanning several partitions cannot observe a torn rebuild.) The
        // write-store shard is collected while the partition's read lock is
        // held: a flush commit takes both the partition lock and the shard
        // lock, so each record is observed in the shard or in the freshly
        // installed run — never in both, never in neither. Partitions cover
        // ascending key ranges, so the concatenated shard records are
        // globally sorted.
        let range = self.config.partitioning.partitions_for_range(min, max);
        let first = *range.start();
        let mut snaps: Vec<PartitionSnapshot<R>> = Vec::new();
        let mut ws_records: Vec<R> = Vec::new();
        for p in range {
            let st = self.partitions[p as usize].read();
            if include_ws {
                self.ws
                    .lock_shard(p)
                    .collect_range(min, max, &mut ws_records);
            }
            snaps.push(PartitionSnapshot {
                key_range: self.config.partitioning.key_range(p),
                runs: st.runs.clone(),
                deletions: st.deletions.clone(),
            });
        }
        // Device errors hit mid-stream land in this cell (the merge operates
        // on plain records); the first error aborts the query.
        let error: Cell<Option<LsmError>> = Cell::new(None);
        let mut sources: Vec<Box<dyn Iterator<Item = R> + '_>> = Vec::new();
        if !ws_records.is_empty() {
            sources.push(Box::new(ws_records.into_iter()));
        }
        for snap in &snaps {
            for run in snap.runs() {
                if run.may_contain_range(min, max) {
                    // Descent errors surface immediately; later page errors
                    // are captured by the adapter below.
                    let iter = run.iter_range(min, max)?;
                    sources.push(Box::new(CaptureErrors {
                        inner: iter,
                        sink: &error,
                    }));
                }
            }
        }
        let apply_deletions = snaps.iter().any(|s| !s.deletions.is_empty());
        let mut out = Vec::new();
        let mut merge = KWayMerge::new(sources);
        loop {
            // Abort at the first captured error instead of draining the
            // remaining sources into a result that will be thrown away.
            if let Some(e) = error.take() {
                return Err(e);
            }
            let Some(rec) = merge.next() else { break };
            let deleted = apply_deletions && {
                let pidx = self.config.partitioning.partition_of(rec.partition_key());
                snaps[(pidx - first) as usize].deletions.contains(&rec)
            };
            if !deleted {
                out.push(rec);
            }
        }
        match error.take() {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Creates a [`RunBuilder`] on this table's file store, with a Bloom
    /// filter sized for `expected_records`, for assembling a replacement run
    /// outside the table (the write stage of the streaming rebuild pipeline).
    /// Install the finished run with
    /// [`commit_rebuilt_partition`](Self::commit_rebuilt_partition).
    pub fn new_run_builder(&self, expected_records: usize) -> RunBuilder<R> {
        RunBuilder::with_capacity(self.files.clone(), &self.config.bloom, expected_records)
    }

    /// Atomically swaps the runs a rebuild consumed (`rebuilt_from`, the
    /// snapshot the rebuild streamed) for `new_run` (build-then-swap). The
    /// caller has already built `new_run` to completion — every page of it
    /// is on the device — so this step performs no fallible writes: under
    /// the partition's write lock it installs the new run list and drops the
    /// deletion marks the rebuild consumed in-stream, then retires the
    /// replaced runs. Readers holding a pre-swap [`PartitionSnapshot`] keep
    /// streaming from the old runs (whose files survive until the last
    /// snapshot drops); every snapshot taken after the swap sees only the
    /// new run.
    ///
    /// State that arrived *after* the rebuild's snapshot survives the swap:
    /// Level-0 runs appended by a racing consistency-point flush stay
    /// installed (after `new_run`, preserving oldest-first order), and
    /// deletion marks added by a racing relocation keep masking their
    /// records — only the runs and marks the rebuild actually consumed are
    /// replaced. A rebuild that failed before this point simply never calls
    /// it, leaving the partition fully intact and queryable.
    ///
    /// Passing `None` empties the consumed runs (e.g. every record was
    /// purged).
    ///
    /// # Panics
    ///
    /// Panics if `pidx` is out of range; debug-asserts that `new_run`'s keys
    /// lie inside the partition.
    pub fn commit_rebuilt_partition(
        &self,
        pidx: u32,
        new_run: Option<Run<R>>,
        rebuilt_from: &PartitionSnapshot<R>,
    ) {
        let (min, max) = self.config.partitioning.key_range(pidx);
        if let Some(run) = &new_run {
            debug_assert!(
                run.min_key() >= min && run.max_key() <= max,
                "rebuilt run keys [{}, {}] escape partition {pidx} [{min}, {max}]",
                run.min_key(),
                run.max_key(),
            );
        }
        let mut fresh: Vec<Arc<Run<R>>> = new_run.into_iter().map(Arc::new).collect();
        let mut retired: Vec<Arc<Run<R>>> = Vec::new();
        {
            let mut st = self.partitions[pidx as usize].write();
            for run in st.runs.iter() {
                if rebuilt_from.runs.iter().any(|old| Arc::ptr_eq(old, run)) {
                    retired.push(run.clone());
                } else {
                    // Appended by a flush after the snapshot: keep it.
                    fresh.push(run.clone());
                }
            }
            st.deletions = if Arc::ptr_eq(&st.deletions, &rebuilt_from.deletions) {
                Arc::new(DeletionVector::new())
            } else {
                // Marks added since the snapshot were not consumed by the
                // rebuild; they must keep masking their records.
                Arc::new(st.deletions.difference(&rebuilt_from.deletions))
            };
            st.runs = Arc::new(fresh);
        }
        // Retire outside the lock: when no reader holds a snapshot the files
        // are deleted right here; otherwise the last snapshot drop deletes
        // them.
        for run in retired {
            run.retire();
        }
    }

    /// Streams partition `pidx`'s disk-resident records (deletion vector
    /// applied in-stream) into a single replacement run and swaps it in.
    /// This is the streaming replace primitive: peak memory is one output
    /// page plus the merge cursors, independent of the partition size, and
    /// the old runs are retired only after the replacement is fully on disk.
    /// Queries proceed against the pre-rebuild snapshot throughout.
    ///
    /// # Errors
    ///
    /// Propagates device errors. On error the partially built replacement is
    /// deleted and the partition's old runs remain installed and queryable.
    ///
    /// # Panics
    ///
    /// Panics if `pidx` is out of range.
    pub fn compact_partition(&self, pidx: u32) -> Result<()> {
        let snap = self.partition_snapshot(pidx);
        let mut builder = self.new_run_builder(snap.disk_records() as usize);
        let streamed: Result<()> = (|| {
            for item in snap.iter_disk()? {
                builder.push(&item?)?;
            }
            Ok(())
        })();
        if let Err(e) = streamed {
            builder.abandon();
            return Err(e);
        }
        let new_run = builder.finish_nonempty()?;
        self.commit_rebuilt_partition(pidx, new_run, &snap);
        Ok(())
    }

    /// Replaces all on-disk runs with a single run per partition built from
    /// `records` (which must be sorted). The deletion vectors are cleared:
    /// the caller is expected to have already applied them (e.g. via
    /// [`scan_disk`](Self::scan_disk)).
    ///
    /// The swap is crash-safe (build-then-swap): every replacement run is
    /// fully built before any old run is retired, and on error the partial
    /// replacements are deleted, leaving the previous contents installed.
    /// Old and replacement runs therefore coexist briefly — the device needs
    /// transient headroom for one copy of `records` (per-partition rebuilds
    /// via [`compact_partition`](Self::compact_partition) bound the headroom
    /// to one partition instead of the whole table).
    ///
    /// # Errors
    ///
    /// Returns [`LsmError::UnsortedInput`](crate::LsmError::UnsortedInput) if
    /// `records` is not sorted and propagates device errors.
    pub fn replace_disk_contents(&mut self, records: &[R]) -> Result<MaintenanceStats> {
        if !records.is_sorted() {
            return Err(LsmError::UnsortedInput);
        }
        let before = self.stats();
        let parts = self.config.partitioning;
        // Build every replacement run first, touching nothing on error.
        let new_runs: Vec<(usize, Run<R>)> = if parts.partition_count() == 1 {
            match Run::build(&self.files, records, &self.config.bloom)? {
                Some(run) => vec![(0, run)],
                None => Vec::new(),
            }
        } else {
            let mut buckets: Vec<Vec<R>> = (0..parts.partition_count() as usize)
                .map(|_| Vec::new())
                .collect();
            for r in records {
                buckets[parts.partition_of(r.partition_key()) as usize].push(r.clone());
            }
            let mut built = Vec::new();
            for (idx, bucket) in buckets.into_iter().enumerate() {
                match Run::build(&self.files, &bucket, &self.config.bloom) {
                    Ok(Some(run)) => built.push((idx, run)),
                    Ok(None) => {}
                    Err(e) => {
                        // Unwind: delete the replacements built so far; the
                        // old runs were never touched.
                        for (_, run) in built {
                            let _ = run.delete();
                        }
                        return Err(e);
                    }
                }
            }
            built
        };
        // Swap: everything below performs no fallible device writes.
        let mut records_after = 0u64;
        let mut pages_after = 0u64;
        let runs_after = new_runs.len() as u32;
        let mut fresh: Vec<Vec<Arc<Run<R>>>> =
            (0..self.partitions.len()).map(|_| Vec::new()).collect();
        for (idx, run) in new_runs {
            records_after += run.len();
            pages_after += run.stats().total_pages;
            fresh[idx].push(Arc::new(run));
        }
        let mut old: Vec<Arc<Vec<Arc<Run<R>>>>> = Vec::with_capacity(self.partitions.len());
        for (part, fresh_runs) in self.partitions.iter().zip(fresh) {
            let mut st = part.write();
            st.deletions = Arc::new(DeletionVector::new());
            old.push(std::mem::replace(&mut st.runs, Arc::new(fresh_runs)));
        }
        for list in &old {
            for run in list.iter() {
                run.retire();
            }
        }
        Ok(MaintenanceStats {
            runs_before: before.run_count,
            runs_after,
            records_before: before.disk_records,
            records_after,
            pages_after,
        })
    }

    /// Merges all Level-0 runs into a single run per partition, dropping
    /// deletion-vector records. This is the generic compaction primitive;
    /// Backlog's full maintenance additionally joins `From` and `To` into
    /// `Combined` while streaming through the same per-partition machinery.
    ///
    /// Each partition is rebuilt independently through
    /// [`compact_partition`](Self::compact_partition), so peak memory is one
    /// output page per partition rather than the whole table, and a device
    /// fault leaves every partition either fully old or fully rebuilt.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn compact(&self) -> Result<MaintenanceStats> {
        let before = self.stats();
        for pidx in 0..self.config.partitioning.partition_count() {
            self.compact_partition(pidx)?;
        }
        let after = self.stats();
        Ok(MaintenanceStats {
            runs_before: before.run_count,
            runs_after: after.run_count,
            records_before: before.disk_records,
            records_after: after.disk_records,
            pages_after: after.disk_pages,
        })
    }

    /// Rewrites the runs with deletion-vector records dropped (in-stream, via
    /// the same per-partition streaming rebuild as [`compact`](Self::compact)).
    /// The paper performs this "if the deletion vector becomes sufficiently
    /// large".
    pub fn rewrite_purging_deletions(&self) -> Result<MaintenanceStats> {
        self.compact()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> TableStats {
        let mut disk = RunStats::default();
        let mut bloom_bytes = 0u64;
        let mut run_count = 0u32;
        let mut deleted_records = 0u64;
        for part in &self.partitions {
            let st = part.read();
            for run in st.runs.iter() {
                let s = run.stats();
                disk.records += s.records;
                disk.total_pages += s.total_pages;
                disk.record_bytes += s.record_bytes;
                bloom_bytes += run.bloom().size_bytes() as u64;
                run_count += 1;
            }
            deleted_records += st.deletions.len() as u64;
        }
        TableStats {
            ws_records: self.ws.len() as u64,
            run_count,
            disk_records: disk.records,
            disk_pages: disk.total_pages,
            disk_record_bytes: disk.record_bytes,
            bloom_bytes,
            deleted_records,
        }
    }

    /// Total bytes the table occupies on the device (pages × page size).
    pub fn disk_bytes(&self) -> u64 {
        self.stats().disk_pages * blockdev::PAGE_SIZE as u64
    }
}

// Compile-time `Send + Sync` guarantees (static_assertions-style), checked
// for every record type: concurrent maintenance shares `&LsmTable` across
// worker threads and readers stream from `PartitionSnapshot`s concurrently.
#[allow(dead_code)]
fn _assert_send_sync<R: Record>() {
    fn assert<T: Send + Sync>() {}
    assert::<LsmTable<R>>();
    assert::<PartitionSnapshot<R>>();
    assert::<Run<R>>();
    assert::<RunBuilder<R>>();
    assert::<DeletionVector<R>>();
}

/// Adapts a fallible record stream into an infallible one for the k-way
/// merge: the first error is parked in `sink` and the stream ends, which
/// aborts the merge cleanly (the caller checks the cell afterwards).
struct CaptureErrors<'a, R, I: Iterator<Item = Result<R>>> {
    inner: I,
    sink: &'a Cell<Option<LsmError>>,
}

impl<R, I: Iterator<Item = Result<R>>> Iterator for CaptureErrors<'_, R, I> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        match self.inner.next() {
            Some(Ok(r)) => Some(r),
            Some(Err(e)) => {
                self.sink.set(Some(e));
                None
            }
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_support::TestRec;
    use blockdev::{Device, DeviceConfig, SimDisk};

    fn table() -> (Arc<SimDisk>, LsmTable<TestRec>) {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk.clone()));
        (disk, LsmTable::new(files, TableConfig::named("test")))
    }

    #[test]
    fn query_sees_ws_and_runs() {
        let (_d, t) = table();
        t.insert(TestRec::new(1, 10));
        t.insert(TestRec::new(2, 20));
        t.flush_cp().unwrap();
        t.insert(TestRec::new(3, 30));
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(t.query_range(2, 3).unwrap().len(), 2);
        assert_eq!(t.ws_len(), 1);
        assert_eq!(t.run_count(), 1);
    }

    #[test]
    fn flush_empty_ws_is_noop() {
        let (_d, t) = table();
        let stats = t.flush_cp().unwrap();
        assert_eq!(stats, FlushStats::default());
        assert_eq!(t.run_count(), 0);
    }

    #[test]
    fn each_flush_creates_a_level0_run() {
        let (_d, t) = table();
        for cp in 0..5u64 {
            for i in 0..100u64 {
                t.insert(TestRec::new(cp * 100 + i, cp));
            }
            t.flush_cp().unwrap();
        }
        assert_eq!(t.run_count(), 5);
        assert_eq!(t.stats().disk_records, 500);
    }

    #[test]
    fn compaction_merges_runs_into_one() {
        let (_d, t) = table();
        for cp in 0..5u64 {
            for i in 0..50u64 {
                t.insert(TestRec::new(i * 10 + cp, cp));
            }
            t.flush_cp().unwrap();
        }
        let before = t.scan_all().unwrap();
        let stats = t.compact().unwrap();
        assert_eq!(stats.runs_before, 5);
        assert_eq!(stats.runs_after, 1);
        assert_eq!(stats.records_before, 250);
        assert_eq!(stats.records_after, 250);
        assert_eq!(
            t.scan_all().unwrap(),
            before,
            "compaction preserves contents"
        );
        assert_eq!(t.run_count(), 1);
    }

    #[test]
    fn bloom_filters_avoid_reads_for_absent_keys() {
        let (disk, t) = table();
        for cp in 0..10u64 {
            for i in 0..100u64 {
                t.insert(TestRec::new(cp * 1_000 + i, 0));
            }
            t.flush_cp().unwrap();
        }
        let before = disk.stats().snapshot();
        // Query a key far away from anything stored: every run is skipped by
        // its key bounds / bloom filter.
        assert!(t.query_range(500_000, 500_000).unwrap().is_empty());
        let after = disk.stats().snapshot();
        assert_eq!(after.page_reads, before.page_reads);
    }

    #[test]
    fn deletion_vector_hides_records_until_rewrite() {
        let (_d, t) = table();
        for i in 0..10u64 {
            t.insert(TestRec::new(i, i));
        }
        t.flush_cp().unwrap();
        t.mark_deleted(TestRec::new(3, 3));
        t.mark_deleted(TestRec::new(4, 4));
        assert_eq!(t.scan_all().unwrap().len(), 8);
        assert_eq!(t.stats().deleted_records, 2);
        assert_eq!(t.deleted_records(), 2);
        let stats = t.rewrite_purging_deletions().unwrap();
        assert_eq!(stats.records_after, 8);
        assert_eq!(t.stats().deleted_records, 0);
        assert_eq!(t.scan_all().unwrap().len(), 8);
    }

    #[test]
    fn mark_deleted_on_buffered_record_prunes_ws() {
        let (_d, t) = table();
        t.insert(TestRec::new(7, 7));
        t.mark_deleted(TestRec::new(7, 7));
        assert_eq!(t.ws_len(), 0);
        assert_eq!(
            t.stats().deleted_records,
            0,
            "no deletion vector entry needed"
        );
    }

    #[test]
    fn partitioned_table_splits_runs_by_key_range() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk));
        let config =
            TableConfig::named("parted").with_partitioning(Partitioning::fixed_ranges(4, 1_000));
        let t = LsmTable::new(files, config);
        for i in 0..4_000u64 {
            t.insert(TestRec::new(i, 0));
        }
        let stats = t.flush_cp().unwrap();
        assert_eq!(stats.runs_created, 4);
        assert_eq!(t.run_count(), 4);
        assert_eq!(t.query_range(1_500, 1_509).unwrap().len(), 10);
        assert_eq!(t.scan_all().unwrap().len(), 4_000);
        let m = t.compact().unwrap();
        assert_eq!(m.runs_after, 4);
    }

    #[test]
    fn scan_disk_ignores_write_store() {
        let (_d, t) = table();
        t.insert(TestRec::new(1, 1));
        t.flush_cp().unwrap();
        t.insert(TestRec::new(2, 2));
        assert_eq!(t.scan_disk().unwrap().len(), 1);
        assert_eq!(t.scan_all().unwrap().len(), 2);
    }

    #[test]
    fn replace_disk_contents_rejects_unsorted() {
        let (_d, mut t) = table();
        let recs = vec![TestRec::new(5, 0), TestRec::new(1, 0)];
        assert!(t.replace_disk_contents(&recs).is_err());
    }

    #[test]
    fn failed_flush_returns_records_to_write_store() {
        let (disk, t) = table();
        for i in 0..1000u64 {
            t.insert(TestRec::new(i, i));
        }
        disk.fail_writes_after(1);
        assert!(t.flush_cp().is_err());
        // Nothing was lost: the records are back in the write store and the
        // partially written run file was deleted rather than leaked.
        assert_eq!(t.ws_len(), 1000);
        assert_eq!(t.run_count(), 0);
        assert_eq!(
            t.files().file_count(),
            0,
            "aborted run file must be deleted"
        );
        assert_eq!(t.scan_all().unwrap().len(), 1000);
        // Retry after recovery flushes the same records.
        disk.clear_write_fault();
        let stats = t.flush_cp().unwrap();
        assert_eq!(stats.records_flushed, 1000);
        assert_eq!(t.ws_len(), 0);
        assert_eq!(t.scan_all().unwrap().len(), 1000);
    }

    #[test]
    fn failed_flush_is_all_or_nothing_across_partitions() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk.clone()));
        let config =
            TableConfig::named("parted").with_partitioning(Partitioning::fixed_ranges(4, 1_000));
        let t = LsmTable::new(files, config);
        for i in 0..4_000u64 {
            t.insert(TestRec::new(i, 0));
        }
        // Partition 0 holds 1000 16-byte records: 4 leaves + 1 root = 5
        // pages. Let those through, then fail partition 1 mid-build: even
        // the partition whose run was fully built must NOT be installed —
        // a half-committed flush would strand records in runs where
        // same-interval proactive pruning can no longer reach them.
        disk.fail_writes_after(5);
        assert!(t.flush_cp().is_err());
        disk.clear_write_fault();
        assert_eq!(t.ws_len(), 4_000, "every record returns to the write store");
        assert_eq!(t.stats().disk_records, 0, "no partition keeps a run");
        assert_eq!(t.run_count(), 0);
        assert_eq!(
            t.files().file_count(),
            0,
            "built and partial run files are deleted, not leaked"
        );
        assert_eq!(t.scan_all().unwrap().len(), 4_000, "no record lost");
        t.flush_cp().unwrap();
        assert_eq!(t.ws_len(), 0);
        assert_eq!(t.scan_all().unwrap().len(), 4_000);
    }

    #[test]
    fn prepared_flush_installs_nothing_until_commit() {
        let (_d, t) = table();
        for i in 0..100u64 {
            t.insert(TestRec::new(i, i));
        }
        let prep = t.prepare_flush(1).unwrap();
        // Built but not installed: queries still see the records in the
        // write store, the run list is empty, and the manifest-facing metas
        // describe the pending run.
        assert_eq!(t.run_count(), 0);
        assert_eq!(t.ws_len(), 100);
        assert_eq!(t.scan_all().unwrap().len(), 100);
        assert_eq!(prep.stats().records_flushed, 100);
        assert_eq!(prep.run_metas().len(), 1);
        assert_eq!(prep.run_metas()[0].1.records, 100);
        let stats = prep.commit();
        assert_eq!(stats.records_flushed, 100);
        assert_eq!(t.run_count(), 1);
        assert_eq!(t.ws_len(), 0);
        assert_eq!(t.scan_all().unwrap().len(), 100);
    }

    #[test]
    fn dropped_prepared_flush_aborts_cleanly() {
        let (_d, t) = table();
        for i in 0..100u64 {
            t.insert(TestRec::new(i, i));
        }
        {
            let prep = t.prepare_flush(1).unwrap();
            assert!(!prep.is_empty());
            // Dropped without commit: abort.
        }
        assert_eq!(t.run_count(), 0);
        assert_eq!(t.ws_len(), 100, "staged records return to the shard");
        assert_eq!(t.files().file_count(), 0, "built run file is deleted");
        // The same records flush fine afterwards (the flush lock was
        // released by the drop).
        t.flush_cp().unwrap();
        assert_eq!(t.run_count(), 1);
        assert_eq!(t.scan_all().unwrap().len(), 100);
    }

    #[test]
    fn prepare_flush_async_hands_back_inflight_writes() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency().with_queue_depth(8));
        let files = Arc::new(FileStore::new(disk.clone()));
        let t: LsmTable<TestRec> = LsmTable::new(files, TableConfig::named("async"));
        for i in 0..2_000u64 {
            t.insert(TestRec::new(i, i));
        }
        let mut prep = t.prepare_flush_async(1).unwrap();
        let pending = prep.take_pending_io();
        assert!(
            !pending.is_empty(),
            "an async prepare leaves completions for the caller"
        );
        for c in pending {
            c.wait().unwrap();
        }
        prep.commit();
        assert_eq!(t.run_count(), 1);
        assert_eq!(t.scan_all().unwrap().len(), 2_000);
        assert!(
            disk.stats().snapshot().max_in_flight > 1,
            "the flush pipelined writes through the device queue"
        );
    }

    #[test]
    fn failed_async_completion_aborts_the_prepared_flush() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency().with_queue_depth(8));
        let files = Arc::new(FileStore::new(disk.clone()));
        let t: LsmTable<TestRec> = LsmTable::new(files, TableConfig::named("async"));
        for i in 0..2_000u64 {
            t.insert(TestRec::new(i, i));
        }
        // Build one clean run so the pipelined flush has >2 writes to fail.
        t.flush_cp().unwrap();
        for i in 2_000..4_000u64 {
            t.insert(TestRec::new(i, i));
        }
        let files_before = t.files().file_count();
        disk.fail_writes_after(2);
        let result = t.prepare_flush(1);
        disk.clear_write_fault();
        assert!(matches!(result, Err(LsmError::Device(_))));
        assert_eq!(t.ws_len(), 2_000, "staged records return to the shard");
        assert_eq!(
            t.files().file_count(),
            files_before,
            "the half-written run file is deleted"
        );
        assert_eq!(t.run_count(), 1, "the earlier run is untouched");
        t.flush_cp().unwrap();
        assert_eq!(t.scan_all().unwrap().len(), 4_000);
    }

    #[test]
    fn compact_fault_leaves_old_runs_intact() {
        let (disk, t) = table();
        for cp in 0..5u64 {
            for i in 0..500u64 {
                t.insert(TestRec::new(i * 5 + cp, cp));
            }
            t.flush_cp().unwrap();
        }
        let before = t.scan_disk().unwrap();
        let files_before = t.files().file_count();
        // Fail every failure point of the rebuild in turn: whichever page
        // write dies, the old runs must stay installed and readable.
        for fail_after in [0u64, 1, 3, 7] {
            disk.fail_writes_after(fail_after);
            assert!(
                t.compact().is_err(),
                "fault at write {fail_after} must surface"
            );
            disk.clear_write_fault();
            assert_eq!(t.run_count(), 5, "old runs survive the failed rebuild");
            assert_eq!(
                t.scan_disk().unwrap(),
                before,
                "contents intact after fault at write {fail_after}"
            );
            assert_eq!(
                t.files().file_count(),
                files_before,
                "partial replacement file must be deleted, not leaked"
            );
        }
        // Once the device recovers, the same compaction succeeds.
        let stats = t.compact().unwrap();
        assert_eq!(stats.runs_after, 1);
        assert_eq!(t.scan_disk().unwrap(), before);
    }

    #[test]
    fn partitioned_compact_fault_leaves_every_partition_consistent() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk.clone()));
        let config =
            TableConfig::named("parted").with_partitioning(Partitioning::fixed_ranges(4, 1_000));
        let t = LsmTable::new(files, config);
        for cp in 0..3u64 {
            for i in 0..4_000u64 {
                t.insert(TestRec::new(i, cp));
            }
            t.flush_cp().unwrap();
        }
        let before = t.scan_disk().unwrap();
        // Partition 0's rebuild succeeds; a later partition's rebuild dies.
        // Each partition must be either fully old or fully rebuilt, and the
        // union of contents unchanged.
        disk.fail_writes_after(8);
        assert!(t.compact().is_err());
        disk.clear_write_fault();
        assert_eq!(
            t.scan_disk().unwrap(),
            before,
            "no record lost or duplicated"
        );
        // Recovery completes the compaction.
        let stats = t.compact().unwrap();
        assert_eq!(stats.runs_after, 4);
        assert_eq!(t.scan_disk().unwrap(), before);
    }

    #[test]
    fn replace_disk_contents_fault_keeps_previous_contents() {
        let (disk, mut t) = table();
        for i in 0..1_000u64 {
            t.insert(TestRec::new(i, i));
        }
        t.flush_cp().unwrap();
        let before = t.scan_disk().unwrap();
        let replacement: Vec<TestRec> = (0..2_000u64).map(|i| TestRec::new(i, 0)).collect();
        disk.fail_writes_after(2);
        assert!(t.replace_disk_contents(&replacement).is_err());
        disk.clear_write_fault();
        assert_eq!(
            t.scan_disk().unwrap(),
            before,
            "old contents remain installed after a failed replace"
        );
        // And the replace goes through once the device recovers.
        t.replace_disk_contents(&replacement).unwrap();
        assert_eq!(t.scan_disk().unwrap(), replacement);
    }

    #[test]
    fn compact_partition_consumes_deletion_marks_in_stream() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk));
        let config =
            TableConfig::named("parted").with_partitioning(Partitioning::fixed_ranges(2, 1_000));
        let t = LsmTable::new(files, config);
        for i in 0..2_000u64 {
            t.insert(TestRec::new(i, 0));
        }
        t.flush_cp().unwrap();
        t.mark_deleted(TestRec::new(10, 0)); // partition 0
        t.mark_deleted(TestRec::new(1_500, 0)); // partition 1
                                                // Rebuilding partition 0 drops its mark but must keep partition 1's.
        t.compact_partition(0).unwrap();
        assert_eq!(t.stats().deleted_records, 1, "other partition's mark kept");
        assert_eq!(t.scan_all().unwrap().len(), 1_998);
        t.compact_partition(1).unwrap();
        assert_eq!(t.stats().deleted_records, 0);
        assert_eq!(t.scan_all().unwrap().len(), 1_998);
    }

    #[test]
    fn partition_snapshot_streams_sorted_and_masked() {
        let (_d, t) = table();
        for cp in 0..3u64 {
            for i in 0..100u64 {
                t.insert(TestRec::new(i * 3 + cp, cp));
            }
            t.flush_cp().unwrap();
        }
        t.mark_deleted(TestRec::new(0, 0));
        let snap = t.partition_snapshot(0);
        assert_eq!(snap.run_count(), 3);
        assert_eq!(snap.disk_records(), 300);
        assert_eq!(snap.key_range(), (0, u64::MAX));
        let streamed: Result<Vec<TestRec>> = snap.iter_disk().unwrap().collect();
        let streamed = streamed.unwrap();
        assert_eq!(streamed.len(), 299);
        assert!(streamed.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(streamed, t.scan_disk().unwrap());
    }

    #[test]
    fn snapshot_survives_a_concurrent_swap() {
        // A reader's snapshot taken before a rebuild must keep streaming the
        // pre-rebuild state even after the partition has been swapped and
        // the old runs retired.
        let (_d, t) = table();
        for cp in 0..4u64 {
            for i in 0..200u64 {
                t.insert(TestRec::new(i * 4 + cp, cp));
            }
            t.flush_cp().unwrap();
        }
        let before = t.scan_disk().unwrap();
        let files_before = t.files().file_count();
        let snap = t.partition_snapshot(0);
        assert_eq!(snap.run_count(), 4);
        t.compact_partition(0).unwrap();
        assert_eq!(t.run_count(), 1, "table sees the rebuilt partition");
        // Old run files survive because the snapshot still references them.
        assert_eq!(t.files().file_count(), files_before + 1);
        let streamed: Result<Vec<TestRec>> = snap.iter_disk().unwrap().collect();
        assert_eq!(streamed.unwrap(), before, "snapshot reads pre-swap state");
        drop(snap);
        assert_eq!(
            t.files().file_count(),
            1,
            "dropping the last snapshot reclaims the retired runs"
        );
        assert_eq!(t.scan_disk().unwrap(), before);
    }

    #[test]
    fn concurrent_readers_see_old_or_new_during_compaction() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk));
        let config =
            TableConfig::named("parted").with_partitioning(Partitioning::fixed_ranges(4, 1_000));
        let t = LsmTable::new(files, config);
        for cp in 0..6u64 {
            for i in 0..4_000u64 {
                t.insert(TestRec::new(i, cp));
            }
            t.flush_cp().unwrap();
        }
        let baseline = t.scan_disk().unwrap();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let table = &t;
            let done_ref = &done;
            let baseline_ref = &baseline;
            for _ in 0..2 {
                s.spawn(move || {
                    let mut observed = 0u32;
                    while !done_ref.load(Ordering::Relaxed) {
                        // Compaction must be invisible to queries: results
                        // always match the (unchanging) logical contents.
                        let got = table.query_range(1_500, 1_509).unwrap();
                        let want: Vec<TestRec> = baseline_ref
                            .iter()
                            .filter(|r| (1_500..=1_509).contains(&r.key))
                            .cloned()
                            .collect();
                        assert_eq!(got, want);
                        observed += 1;
                    }
                    assert!(observed > 0);
                });
            }
            s.spawn(move || {
                for pidx in 0..table.partition_count() {
                    table.compact_partition(pidx).unwrap();
                }
                done_ref.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(t.run_count(), 4);
        assert_eq!(t.scan_disk().unwrap(), baseline);
        assert_eq!(t.files().file_count(), 4, "no retired file leaked");
    }

    #[test]
    fn narrow_queries_do_not_materialize_full_run_scans() {
        let (disk, t) = table();
        // One large run: 50k 16-byte records = ~197 leaves + index pages.
        for i in 0..50_000u64 {
            t.insert(TestRec::new(i, i));
        }
        t.flush_cp().unwrap();
        let full_scan_pages = {
            let before = disk.stats().snapshot().page_reads;
            assert_eq!(t.scan_all().unwrap().len(), 50_000);
            disk.stats().snapshot().page_reads - before
        };
        let narrow_pages = {
            let before = disk.stats().snapshot().page_reads;
            assert_eq!(t.query_range(25_000, 25_000).unwrap().len(), 1);
            disk.stats().snapshot().page_reads - before
        };
        // A point query touches the B-tree descent plus one leaf — single
        // digits — while the full scan touches every leaf.
        assert!(narrow_pages <= 6, "point query read {narrow_pages} pages");
        assert!(
            full_scan_pages >= 190,
            "full scan expected to touch every leaf, read {full_scan_pages}"
        );
    }

    #[test]
    fn flush_parallel_matches_serial() {
        let mk = || {
            let disk = SimDisk::new_shared(DeviceConfig::free_latency());
            let files = Arc::new(FileStore::new(disk));
            let config = TableConfig::named("parted")
                .with_partitioning(Partitioning::fixed_ranges(4, 1_000));
            let t = LsmTable::new(files, config);
            for i in 0..4_000u64 {
                t.insert(TestRec::new(i, i % 7));
            }
            t
        };
        let serial = mk();
        let parallel = mk();
        let a = serial.flush_cp().unwrap();
        let b = parallel.flush_cp_parallel(4).unwrap();
        assert_eq!(a, b, "flush stats identical across fan-out widths");
        assert_eq!(serial.scan_disk().unwrap(), parallel.scan_disk().unwrap());
        assert_eq!(parallel.run_count(), 4);
        assert_eq!(parallel.ws_len(), 0);
    }

    #[test]
    fn parallel_flush_fault_loses_no_records() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk.clone()));
        let config =
            TableConfig::named("parted").with_partitioning(Partitioning::fixed_ranges(4, 1_000));
        let t = LsmTable::new(files, config);
        for i in 0..4_000u64 {
            t.insert(TestRec::new(i, 0));
        }
        disk.fail_writes_after(3);
        assert!(t.flush_cp_parallel(4).is_err());
        disk.clear_write_fault();
        // Whatever subset of partitions committed, the union is intact and a
        // retry completes the flush.
        assert_eq!(t.ws_len() as u64 + t.stats().disk_records, 4_000);
        assert_eq!(t.scan_all().unwrap().len(), 4_000);
        t.flush_cp_parallel(4).unwrap();
        assert_eq!(t.ws_len(), 0);
        assert_eq!(t.scan_all().unwrap().len(), 4_000);
    }

    #[test]
    fn rebuild_commit_preserves_runs_flushed_after_snapshot() {
        // A CP flush that lands while a rebuild streams must survive the
        // rebuild's commit: only the runs the rebuild consumed are swapped.
        let (_d, t) = table();
        for i in 0..100u64 {
            t.insert(TestRec::new(i, 0));
        }
        t.flush_cp().unwrap();
        let snap = t.partition_snapshot(0);
        // Racing flush after the rebuild snapshot.
        for i in 100..150u64 {
            t.insert(TestRec::new(i, 0));
        }
        t.flush_cp().unwrap();
        // Rebuild from the snapshot and commit.
        let mut builder = t.new_run_builder(snap.disk_records() as usize);
        for item in snap.iter_disk().unwrap() {
            builder.push(&item.unwrap()).unwrap();
        }
        let new_run = builder.finish_nonempty().unwrap();
        t.commit_rebuilt_partition(0, new_run, &snap);
        assert_eq!(t.run_count(), 2, "racing flush's run survives the swap");
        assert_eq!(t.scan_disk().unwrap().len(), 150, "no record lost");
    }

    #[test]
    fn rebuild_commit_preserves_deletion_marks_added_after_snapshot() {
        let (_d, t) = table();
        for i in 0..10u64 {
            t.insert(TestRec::new(i, 0));
        }
        t.flush_cp().unwrap();
        let snap = t.partition_snapshot(0);
        // A relocation marks a record deleted while the rebuild streams; the
        // rebuild's output still contains the record (its snapshot predates
        // the mark), so the mark must survive the commit.
        t.mark_deleted(TestRec::new(3, 0));
        let mut builder = t.new_run_builder(snap.disk_records() as usize);
        for item in snap.iter_disk().unwrap() {
            builder.push(&item.unwrap()).unwrap();
        }
        let new_run = builder.finish_nonempty().unwrap();
        t.commit_rebuilt_partition(0, new_run, &snap);
        assert_eq!(t.stats().deleted_records, 1, "racing mark survives");
        let disk = t.scan_disk().unwrap();
        assert_eq!(disk.len(), 9);
        assert!(!disk.contains(&TestRec::new(3, 0)));
        // The next rebuild consumes the mark in-stream and drops it.
        t.compact_partition(0).unwrap();
        assert_eq!(t.stats().deleted_records, 0);
        assert_eq!(t.scan_disk().unwrap().len(), 9);
    }

    #[test]
    fn mark_on_staged_record_defers_until_the_flush_commit() {
        // Regression test: a record staged by an in-flight flush must not
        // put its deletion mark in the partition's vector before the
        // flush's run is installed — a rebuild snapshot taken in that
        // window would treat the mark as consumed, and its commit would
        // clear it while the racing flush installs the record, resurrecting
        // a deleted record.
        let (_d, t) = table();
        t.insert(TestRec::new(1, 0));
        t.insert(TestRec::new(2, 0));
        let staged = t.ws_shard(0).stage(); // a CP flush is now "in flight"
        assert_eq!(staged.len(), 2);
        t.mark_deleted(TestRec::new(1, 0));
        // Unstaged at once and invisible, but the deletion vector — which a
        // rebuild snapshot would capture — is still empty.
        assert_eq!(t.scan_all().unwrap(), vec![TestRec::new(2, 0)]);
        assert_eq!(t.stats().deleted_records, 0, "mark deferred, not in the DV");
        assert_eq!(t.partition_snapshot(0).deletions().len(), 0);
        // The flush commit hands the deferred mark back to be applied in
        // the same critical section that installs the run.
        let deferred = t.ws_shard(0).commit_flush();
        assert_eq!(deferred, vec![TestRec::new(1, 0)]);
    }

    #[test]
    fn mark_on_staged_record_is_dropped_when_the_flush_fails() {
        let (_d, t) = table();
        t.insert(TestRec::new(1, 0));
        t.ws_shard(0).stage();
        t.mark_deleted(TestRec::new(1, 0));
        // The flush fails: the record was deleted while buffered, so it
        // simply ceases to exist — no run, no mark, nothing restored.
        t.ws_shard(0).restore_flush();
        assert_eq!(t.ws_len(), 0);
        assert_eq!(t.stats().deleted_records, 0);
        assert!(t.scan_all().unwrap().is_empty());
        assert!(t.ws_shard(0).commit_flush().is_empty(), "no mark lingers");
    }

    #[test]
    fn writers_race_flush_and_queries_without_losing_records() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk));
        let config =
            TableConfig::named("parted").with_partitioning(Partitioning::fixed_ranges(4, 1_000));
        let t = LsmTable::new(files, config);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let table = &t;
            let done_ref = &done;
            // Four writers, each owning one partition's key range.
            let writers: Vec<_> = (0..4u64)
                .map(|w| {
                    s.spawn(move || {
                        for i in 0..500u64 {
                            table.insert(TestRec::new(w * 1_000 + i, 0));
                        }
                    })
                })
                .collect();
            // Flusher and reader race the writers.
            s.spawn(move || {
                while !done_ref.load(Ordering::Relaxed) {
                    table.flush_cp_parallel(2).unwrap();
                }
                // Final flush after the writers are done drains everything.
                table.flush_cp().unwrap();
            });
            s.spawn(move || {
                while !done_ref.load(Ordering::Relaxed) {
                    // Buffered and flushed records must never double up.
                    let got = table.query_range(0, 0).unwrap();
                    assert!(got.len() <= 1, "record seen twice: {got:?}");
                }
            });
            for w in writers {
                w.join().unwrap();
            }
            done.store(true, Ordering::Relaxed);
        });
        assert_eq!(t.ws_len(), 0, "final flush drained the store");
        assert_eq!(
            t.scan_all().unwrap().len(),
            2_000,
            "every record exactly once"
        );
    }

    #[test]
    fn manifest_roundtrip_reopens_identical_table() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk.clone()));
        let mk_config =
            || TableConfig::named("parted").with_partitioning(Partitioning::fixed_ranges(4, 1_000));
        let t = LsmTable::new(files.clone(), mk_config());
        for cp in 0..3u64 {
            for i in 0..4_000u64 {
                t.insert(TestRec::new(i, cp));
            }
            t.flush_cp().unwrap();
        }
        t.mark_deleted(TestRec::new(10, 0));
        t.mark_deleted(TestRec::new(3_500, 2));
        let want = t.scan_disk().unwrap();
        let want_stats = t.stats();
        let reads_before = disk.stats().snapshot().page_reads;
        // Capture the manifest and reopen on the same file store (the files
        // are still live, as they would be after FileStore::restore).
        let parts: Vec<PartitionManifest<TestRec>> =
            (0..4).map(|p| t.partition_snapshot(p).manifest()).collect();
        drop(t);
        let reopened = LsmTable::open_from_manifest(files, mk_config(), parts).unwrap();
        assert_eq!(
            disk.stats().snapshot().page_reads,
            reads_before,
            "reopening reads no pages"
        );
        assert_eq!(reopened.scan_disk().unwrap(), want);
        let got_stats = reopened.stats();
        assert_eq!(got_stats.run_count, want_stats.run_count);
        assert_eq!(got_stats.disk_records, want_stats.disk_records);
        assert_eq!(got_stats.deleted_records, 2);
        assert_eq!(got_stats.bloom_bytes, want_stats.bloom_bytes);
        // The reopened table is fully functional: bloom filters still skip
        // absent keys, inserts and flushes still work.
        let reads = disk.stats().snapshot().page_reads;
        assert!(reopened.query_range(999_999, 999_999).unwrap().is_empty());
        assert_eq!(disk.stats().snapshot().page_reads, reads);
        reopened.insert(TestRec::new(42, 9));
        reopened.flush_cp().unwrap();
        assert_eq!(reopened.scan_all().unwrap().len(), want.len() + 1);
    }

    #[test]
    fn open_from_manifest_rejects_inconsistent_state() {
        let disk = SimDisk::new_shared(DeviceConfig::free_latency());
        let files = Arc::new(FileStore::new(disk));
        let config =
            TableConfig::named("parted").with_partitioning(Partitioning::fixed_ranges(2, 1_000));
        let t = LsmTable::new(files.clone(), config.clone());
        for i in 0..2_000u64 {
            t.insert(TestRec::new(i, 0));
        }
        t.flush_cp().unwrap();
        let parts: Vec<PartitionManifest<TestRec>> =
            (0..2).map(|p| t.partition_snapshot(p).manifest()).collect();
        // Wrong partition count.
        let r = LsmTable::open_from_manifest(files.clone(), config.clone(), parts[..1].to_vec());
        assert!(matches!(r, Err(LsmError::CorruptRun { .. })));
        // Runs filed under the wrong partition.
        let swapped = vec![parts[1].clone(), parts[0].clone()];
        let r = LsmTable::open_from_manifest(files.clone(), config.clone(), swapped);
        assert!(matches!(r, Err(LsmError::CorruptRun { .. })));
        // Geometry that disagrees with the backing file.
        let mut bad = parts.clone();
        bad[0].runs[0].root_page += 1;
        let r = LsmTable::open_from_manifest(files.clone(), config.clone(), bad);
        assert!(matches!(r, Err(LsmError::CorruptRun { .. })));
        // Deletion mark filed under the wrong partition.
        let mut bad = parts;
        bad[0].deletions.push(TestRec::new(1_500, 0));
        let r = LsmTable::open_from_manifest(files, config, bad);
        assert!(matches!(r, Err(LsmError::CorruptRun { .. })));
    }

    #[test]
    fn stats_track_sizes() {
        let (_d, t) = table();
        for i in 0..1000u64 {
            t.insert(TestRec::new(i, i));
        }
        t.flush_cp().unwrap();
        let s = t.stats();
        assert_eq!(s.disk_records, 1000);
        assert!(s.disk_pages > 0);
        assert_eq!(s.disk_record_bytes, 1000 * 16);
        assert!(s.bloom_bytes > 0);
        assert!(t.disk_bytes() >= s.disk_record_bytes);
    }
}
