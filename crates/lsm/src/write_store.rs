use std::collections::BTreeSet;
use std::ops::RangeInclusive;
use std::sync::Arc;

use blockdev::Device;
use parking_lot::{Mutex, MutexGuard};

use crate::partition::Partitioning;
use crate::record::Record;

/// The in-memory write store (WS, the LSM-tree's C0 component).
///
/// Updates between two consistency points accumulate here; at a consistency
/// point the whole store is drained into a new on-disk run. The paper
/// implements the WS with an in-memory Berkeley DB B-tree (fsim) or a Linux
/// red/black tree (btrfs) and notes that "any efficient indexing structure
/// would work"; we use a [`BTreeSet`].
///
/// The store keeps records sorted by their full `Ord`, so proactive pruning
/// (removing a `From`/`To` pair born and dead within the same CP interval)
/// is a logarithmic-time removal, as required by Section 5.1 of the paper.
#[derive(Debug, Clone)]
pub struct WriteStore<R: Record> {
    records: BTreeSet<R>,
}

impl<R: Record> Default for WriteStore<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Record> WriteStore<R> {
    /// Creates an empty write store.
    pub fn new() -> Self {
        WriteStore {
            records: BTreeSet::new(),
        }
    }

    /// Inserts a record. Returns `true` if it was not already present.
    pub fn insert(&mut self, record: R) -> bool {
        self.records.insert(record)
    }

    /// Removes an exact record. Returns `true` if it was present.
    ///
    /// This is the hook for the paper's *proactive pruning*: a reference that
    /// is added and removed within one CP interval is deleted here and never
    /// reaches the read store.
    pub fn remove(&mut self, record: &R) -> bool {
        self.records.remove(record)
    }

    /// Whether the exact record is present.
    pub fn contains(&self, record: &R) -> bool {
        self.records.contains(record)
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate memory footprint of the buffered records in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.records.len() * (std::mem::size_of::<R>() + 32)
    }

    /// Iterates over all records in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &R> + '_ {
        self.records.iter()
    }

    /// Iterates over records whose partition key falls in `range`, in sorted
    /// order. The record ordering sorts by partition key first, so this is a
    /// contiguous slice of the tree walked lazily.
    pub fn range_by_partition_key(
        &self,
        range: RangeInclusive<u64>,
    ) -> impl Iterator<Item = &R> + '_ {
        let (min, max) = (*range.start(), *range.end());
        self.records.iter().filter(move |r| {
            let k = r.partition_key();
            k >= min && k <= max
        })
    }

    /// Removes and returns all records in sorted order, leaving the store
    /// empty. Called at every consistency point.
    pub fn drain_sorted(&mut self) -> Vec<R> {
        std::mem::take(&mut self.records).into_iter().collect()
    }

    /// Returns all records in sorted order without draining.
    pub fn to_sorted_vec(&self) -> Vec<R> {
        self.records.iter().cloned().collect()
    }

    /// Removes every record matching `predicate`, returning how many were
    /// removed.
    pub fn retain<F: FnMut(&R) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.records.len();
        self.records.retain(|r| keep(r));
        before - self.records.len()
    }
}

/// One shard of a [`ShardedWriteStore`]: the records of a single partition,
/// split into the *active* set (accepting inserts and removals) and the
/// *flushing* set (staged by an in-flight consistency point, query-visible
/// but already bound for disk).
///
/// The two sets are disjoint by construction: [`insert`](Self::insert)
/// refuses records already staged, and [`remove`](Self::remove) treats staged
/// records as durable (the caller then follows the path it would take for a
/// disk-resident record — writing a `To` record — instead of un-staging a
/// record whose run may already be built).
#[derive(Debug)]
pub struct WriteShard<R: Record> {
    active: WriteStore<R>,
    flushing: WriteStore<R>,
    /// Deletion marks deferred for records that were *staged* when they were
    /// marked: the record is unstaged immediately (queries stop seeing it)
    /// and the mark is applied to the partition's deletion vector in the
    /// same atomic step that installs the flush's run — never earlier, so a
    /// rebuild snapshot can never capture a mark whose record is not yet in
    /// any of its runs.
    pending_marks: Vec<R>,
}

impl<R: Record> Default for WriteShard<R> {
    fn default() -> Self {
        WriteShard {
            active: WriteStore::new(),
            flushing: WriteStore::new(),
            pending_marks: Vec::new(),
        }
    }
}

impl<R: Record> WriteShard<R> {
    /// Inserts a record. Returns `true` if it was not already present
    /// (neither active nor staged for the in-flight flush).
    pub fn insert(&mut self, record: R) -> bool {
        if self.flushing.contains(&record) {
            return false;
        }
        self.active.insert(record)
    }

    /// Removes an exact record from the active set (proactive pruning).
    /// Returns `false` for records staged by an in-flight flush: those are
    /// moments from durability and must be treated like disk-resident
    /// records, not spliced out of a run that may already be built.
    pub fn remove(&mut self, record: &R) -> bool {
        self.active.remove(record)
    }

    /// Whether the record is buffered (active or staged).
    pub fn contains(&self, record: &R) -> bool {
        self.active.contains(record) || self.flushing.contains(record)
    }

    /// Records buffered in this shard (active plus staged).
    pub fn len(&self) -> usize {
        self.active.len() + self.flushing.len()
    }

    /// Whether the shard holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty() && self.flushing.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.active.approx_bytes() + self.flushing.approx_bytes()
    }

    /// Stages every active record for flushing (merging with records left
    /// staged by a previously failed flush) and returns the staged records in
    /// sorted order. Called by the flush at the start of a consistency point;
    /// the records stay query-visible until [`commit_flush`](Self::commit_flush).
    pub fn stage(&mut self) -> Vec<R> {
        if !self.active.is_empty() {
            self.flushing
                .extend(std::mem::take(&mut self.active).drain_sorted());
        }
        self.flushing.to_sorted_vec()
    }

    /// Drops the staged records — their run is fully on disk and installed —
    /// and returns the deferred deletion marks the caller must apply to the
    /// partition's deletion vector in the same critical section.
    pub fn commit_flush(&mut self) -> Vec<R> {
        self.flushing = WriteStore::new();
        std::mem::take(&mut self.pending_marks)
    }

    /// Returns the staged records to the active set after a failed flush, so
    /// proactive pruning resumes and a retry re-stages them. Deferred marks
    /// are dropped: their records were unstaged at mark time and the failed
    /// flush's run was deleted, so they exist nowhere — exactly as if the
    /// mark had removed them from the active set directly.
    pub fn restore_flush(&mut self) {
        if !self.flushing.is_empty() {
            let mut staged = std::mem::take(&mut self.flushing);
            self.active.extend(staged.drain_sorted());
        }
        self.pending_marks.clear();
    }

    /// Handles a deletion mark for a record currently *staged* by an
    /// in-flight flush: the record is unstaged (queries stop seeing it at
    /// once) and the mark is deferred until [`commit_flush`]
    /// (Self::commit_flush) applies it together with the run that contains
    /// the record. Returns `false` if the record is not staged (the caller
    /// then marks the partition's deletion vector directly).
    pub fn defer_mark(&mut self, record: &R) -> bool {
        if self.flushing.remove(record) {
            self.pending_marks.push(record.clone());
            true
        } else {
            false
        }
    }

    /// Appends the shard's records with partition key in `min..=max` to
    /// `out`, in sorted order (the active and staged sets are disjoint, so
    /// this is a two-way merge).
    pub fn collect_range(&self, min: u64, max: u64, out: &mut Vec<R>) {
        let mut a = self.active.range_by_partition_key(min..=max).peekable();
        let mut f = self.flushing.range_by_partition_key(min..=max).peekable();
        loop {
            let take_active = match (a.peek(), f.peek()) {
                (Some(x), Some(y)) => x <= y,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let next = if take_active { a.next() } else { f.next() };
            out.push(next.expect("peeked").clone());
        }
    }
}

/// The write store sharded by partition: one [`WriteShard`] per table
/// partition behind its own mutex, so reference callbacks from different
/// threads only serialize when they touch the same partition.
///
/// All methods take `&self`; per-call methods lock exactly one shard.
/// Callers that apply many operations to one partition (the engine's
/// `WriteBatch` path) can hold a shard lock across the whole group via
/// [`lock_shard`](Self::lock_shard) to amortize the acquisition.
///
/// Lock acquisitions that find a shard already held are counted in the
/// device's [`IoStatsSnapshot::lock_contentions`](blockdev::IoStatsSnapshot)
/// (the same probe-then-block scheme the file store uses for its allocation
/// lock), so write-shard contention shows up in benchmark output.
#[derive(Debug)]
pub struct ShardedWriteStore<R: Record> {
    shards: Vec<Mutex<WriteShard<R>>>,
    partitioning: Partitioning,
    device: Arc<dyn Device>,
}

impl<R: Record> ShardedWriteStore<R> {
    /// Creates an empty store with one shard per partition; contended shard
    /// acquisitions are counted into `device`'s I/O statistics.
    pub fn new(partitioning: Partitioning, device: Arc<dyn Device>) -> Self {
        ShardedWriteStore {
            shards: (0..partitioning.partition_count())
                .map(|_| Mutex::new(WriteShard::default()))
                .collect(),
            partitioning,
            device,
        }
    }

    /// Number of shards (== the table's partition count).
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Locks the shard for partition `pidx` and returns the guard. A
    /// contended acquisition is counted before blocking.
    ///
    /// # Panics
    ///
    /// Panics if `pidx` is out of range.
    pub fn lock_shard(&self, pidx: u32) -> MutexGuard<'_, WriteShard<R>> {
        let shard = &self.shards[pidx as usize];
        match shard.try_lock() {
            Some(guard) => guard,
            None => {
                let stats = self.device.stats();
                stats.record_lock_contention();
                let wait_t0 = stats.obs_now();
                // backlint: allow(lock-order) — try-then-block fallback: this arm runs only when try_lock returned None, so no shard guard is held
                let guard = shard.lock();
                stats.record_lock_wait(
                    blockdev::stats::LOCK_ID_WRITE_SHARD,
                    stats.obs_now().saturating_sub(wait_t0),
                );
                guard
            }
        }
    }

    fn shard_of(&self, record: &R) -> u32 {
        self.partitioning.partition_of(record.partition_key())
    }

    /// Inserts a record into its partition's shard. Returns `true` if it was
    /// not already buffered.
    pub fn insert(&self, record: R) -> bool {
        let pidx = self.shard_of(&record);
        self.lock_shard(pidx).insert(record)
    }

    /// Removes an exact record from its shard's active set. Returns `true`
    /// if it was present (and not staged by an in-flight flush).
    pub fn remove(&self, record: &R) -> bool {
        self.lock_shard(self.shard_of(record)).remove(record)
    }

    /// Whether the exact record is buffered anywhere.
    pub fn contains(&self, record: &R) -> bool {
        self.lock_shard(self.shard_of(record)).contains(record)
    }

    /// Total buffered records across all shards.
    pub fn len(&self) -> usize {
        (0..self.shard_count())
            .map(|p| self.lock_shard(p).len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        (0..self.shard_count()).all(|p| self.lock_shard(p).is_empty())
    }

    /// Approximate memory footprint of all buffered records in bytes.
    pub fn approx_bytes(&self) -> usize {
        (0..self.shard_count())
            .map(|p| self.lock_shard(p).approx_bytes())
            .sum()
    }

    /// All buffered records in sorted order. Partitions cover ascending,
    /// disjoint key ranges and records sort by partition key first, so
    /// concatenating the shards in index order yields a sorted vector.
    pub fn to_sorted_vec(&self) -> Vec<R> {
        let mut out = Vec::new();
        for p in 0..self.shard_count() {
            self.lock_shard(p).collect_range(0, u64::MAX, &mut out);
        }
        out
    }
}

impl<R: Record> Extend<R> for WriteStore<R> {
    fn extend<T: IntoIterator<Item = R>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl<R: Record> FromIterator<R> for WriteStore<R> {
    fn from_iter<T: IntoIterator<Item = R>>(iter: T) -> Self {
        WriteStore {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_support::TestRec;

    #[test]
    fn insert_remove_contains() {
        let mut ws = WriteStore::new();
        assert!(ws.insert(TestRec::new(5, 1)));
        assert!(
            !ws.insert(TestRec::new(5, 1)),
            "duplicate insert reports false"
        );
        assert!(ws.contains(&TestRec::new(5, 1)));
        assert!(ws.remove(&TestRec::new(5, 1)));
        assert!(!ws.remove(&TestRec::new(5, 1)));
        assert!(ws.is_empty());
    }

    #[test]
    fn drain_returns_sorted_and_empties() {
        let mut ws = WriteStore::new();
        for k in [5u64, 1, 9, 3] {
            ws.insert(TestRec::new(k, k * 10));
        }
        let drained = ws.drain_sorted();
        let keys: Vec<u64> = drained.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert!(ws.is_empty());
    }

    #[test]
    fn range_by_partition_key_filters() {
        let mut ws = WriteStore::new();
        for k in 0..20u64 {
            ws.insert(TestRec::new(k, 0));
        }
        let hits: Vec<u64> = ws.range_by_partition_key(5..=8).map(|r| r.key).collect();
        assert_eq!(hits, vec![5, 6, 7, 8]);
    }

    #[test]
    fn retain_removes_matching() {
        let mut ws: WriteStore<TestRec> = (0..10u64).map(|k| TestRec::new(k, 0)).collect();
        let removed = ws.retain(|r| r.key % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(ws.len(), 5);
        assert!(ws.iter().all(|r| r.key % 2 == 0));
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut ws: WriteStore<TestRec> = [TestRec::new(1, 1)].into_iter().collect();
        ws.extend([TestRec::new(2, 2), TestRec::new(3, 3)]);
        assert_eq!(ws.len(), 3);
        assert!(ws.approx_bytes() > 0);
    }

    fn sharded(partitions: u32, width: u64) -> ShardedWriteStore<TestRec> {
        ShardedWriteStore::new(
            Partitioning::fixed_ranges(partitions, width),
            blockdev::SimDisk::new_shared(blockdev::DeviceConfig::free_latency()),
        )
    }

    #[test]
    fn sharded_insert_remove_route_by_partition() {
        let s = sharded(4, 10);
        assert!(s.insert(TestRec::new(5, 1))); // shard 0
        assert!(s.insert(TestRec::new(15, 1))); // shard 1
        assert!(!s.insert(TestRec::new(5, 1)), "duplicate reports false");
        assert!(s.contains(&TestRec::new(15, 1)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(&TestRec::new(5, 1)));
        assert!(!s.remove(&TestRec::new(5, 1)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(s.approx_bytes() > 0);
    }

    #[test]
    fn sharded_sorted_vec_concatenates_shards_in_key_order() {
        let s = sharded(4, 10);
        for k in [35u64, 5, 25, 15, 7, 33] {
            s.insert(TestRec::new(k, 0));
        }
        let keys: Vec<u64> = s.to_sorted_vec().iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![5, 7, 15, 25, 33, 35]);
    }

    #[test]
    fn staged_records_stay_visible_but_not_removable() {
        let s = sharded(2, 10);
        s.insert(TestRec::new(3, 0));
        let staged = s.lock_shard(0).stage();
        assert_eq!(staged.len(), 1);
        // Staged records are query-visible and count toward len...
        assert!(s.contains(&TestRec::new(3, 0)));
        assert_eq!(s.len(), 1);
        // ...but behave like durable records for removal and insertion.
        assert!(
            !s.remove(&TestRec::new(3, 0)),
            "staged record is not removable"
        );
        assert!(
            !s.insert(TestRec::new(3, 0)),
            "staged record is not re-insertable"
        );
        // A different record inserted mid-flush lands in the active set.
        assert!(s.insert(TestRec::new(4, 0)));
        s.lock_shard(0).commit_flush();
        assert!(
            !s.contains(&TestRec::new(3, 0)),
            "committed record left the store"
        );
        assert!(
            s.contains(&TestRec::new(4, 0)),
            "mid-flush insert survives commit"
        );
    }

    #[test]
    fn restore_flush_returns_staged_records_to_active() {
        let s = sharded(2, 10);
        s.insert(TestRec::new(3, 0));
        s.lock_shard(0).stage();
        s.lock_shard(0).restore_flush();
        assert!(
            s.remove(&TestRec::new(3, 0)),
            "restored record removable again"
        );
        assert!(s.is_empty());
    }

    #[test]
    fn restage_after_failed_flush_merges_old_and_new() {
        let s = sharded(2, 10);
        s.insert(TestRec::new(3, 0));
        s.lock_shard(0).stage(); // flush attempt 1 (fails; records stay staged)
        s.insert(TestRec::new(1, 0));
        let staged: Vec<u64> = s.lock_shard(0).stage().iter().map(|r| r.key).collect();
        assert_eq!(
            staged,
            vec![1, 3],
            "retry stages old and new records together"
        );
    }

    #[test]
    fn collect_range_merges_active_and_staged_sorted() {
        let s = sharded(1, u64::MAX);
        for k in [2u64, 6, 9] {
            s.insert(TestRec::new(k, 0));
        }
        s.lock_shard(0).stage();
        for k in [1u64, 5, 7] {
            s.insert(TestRec::new(k, 0));
        }
        let mut out = Vec::new();
        s.lock_shard(0).collect_range(2, 7, &mut out);
        let keys: Vec<u64> = out.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![2, 5, 6, 7]);
    }

    #[test]
    fn contended_shard_acquisitions_are_counted() {
        let disk = blockdev::SimDisk::new_shared(blockdev::DeviceConfig::free_latency());
        let stats = disk.clone();
        let s = Arc::new(ShardedWriteStore::<TestRec>::new(
            Partitioning::fixed_ranges(2, 10),
            disk,
        ));
        let guard = s.lock_shard(0);
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            s2.insert(TestRec::new(1, 0)); // blocks on shard 0
        });
        // Wait until the spawned thread has registered its contention.
        while stats.stats().snapshot().lock_contentions == 0 {
            std::thread::yield_now();
        }
        drop(guard);
        t.join().unwrap();
        assert!(stats.stats().snapshot().lock_contentions >= 1);
        assert_eq!(s.len(), 1);
    }
}
