use std::collections::BTreeSet;
use std::ops::RangeInclusive;

use crate::record::Record;

/// The in-memory write store (WS, the LSM-tree's C0 component).
///
/// Updates between two consistency points accumulate here; at a consistency
/// point the whole store is drained into a new on-disk run. The paper
/// implements the WS with an in-memory Berkeley DB B-tree (fsim) or a Linux
/// red/black tree (btrfs) and notes that "any efficient indexing structure
/// would work"; we use a [`BTreeSet`].
///
/// The store keeps records sorted by their full `Ord`, so proactive pruning
/// (removing a `From`/`To` pair born and dead within the same CP interval)
/// is a logarithmic-time removal, as required by Section 5.1 of the paper.
#[derive(Debug, Clone)]
pub struct WriteStore<R: Record> {
    records: BTreeSet<R>,
}

impl<R: Record> Default for WriteStore<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Record> WriteStore<R> {
    /// Creates an empty write store.
    pub fn new() -> Self {
        WriteStore {
            records: BTreeSet::new(),
        }
    }

    /// Inserts a record. Returns `true` if it was not already present.
    pub fn insert(&mut self, record: R) -> bool {
        self.records.insert(record)
    }

    /// Removes an exact record. Returns `true` if it was present.
    ///
    /// This is the hook for the paper's *proactive pruning*: a reference that
    /// is added and removed within one CP interval is deleted here and never
    /// reaches the read store.
    pub fn remove(&mut self, record: &R) -> bool {
        self.records.remove(record)
    }

    /// Whether the exact record is present.
    pub fn contains(&self, record: &R) -> bool {
        self.records.contains(record)
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate memory footprint of the buffered records in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.records.len() * (std::mem::size_of::<R>() + 32)
    }

    /// Iterates over all records in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &R> + '_ {
        self.records.iter()
    }

    /// Iterates over records whose partition key falls in `range`, in sorted
    /// order. The record ordering sorts by partition key first, so this is a
    /// contiguous slice of the tree walked lazily.
    pub fn range_by_partition_key(
        &self,
        range: RangeInclusive<u64>,
    ) -> impl Iterator<Item = &R> + '_ {
        let (min, max) = (*range.start(), *range.end());
        self.records.iter().filter(move |r| {
            let k = r.partition_key();
            k >= min && k <= max
        })
    }

    /// Removes and returns all records in sorted order, leaving the store
    /// empty. Called at every consistency point.
    pub fn drain_sorted(&mut self) -> Vec<R> {
        std::mem::take(&mut self.records).into_iter().collect()
    }

    /// Returns all records in sorted order without draining.
    pub fn to_sorted_vec(&self) -> Vec<R> {
        self.records.iter().cloned().collect()
    }

    /// Removes every record matching `predicate`, returning how many were
    /// removed.
    pub fn retain<F: FnMut(&R) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.records.len();
        self.records.retain(|r| keep(r));
        before - self.records.len()
    }
}

impl<R: Record> Extend<R> for WriteStore<R> {
    fn extend<T: IntoIterator<Item = R>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl<R: Record> FromIterator<R> for WriteStore<R> {
    fn from_iter<T: IntoIterator<Item = R>>(iter: T) -> Self {
        WriteStore {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_support::TestRec;

    #[test]
    fn insert_remove_contains() {
        let mut ws = WriteStore::new();
        assert!(ws.insert(TestRec::new(5, 1)));
        assert!(
            !ws.insert(TestRec::new(5, 1)),
            "duplicate insert reports false"
        );
        assert!(ws.contains(&TestRec::new(5, 1)));
        assert!(ws.remove(&TestRec::new(5, 1)));
        assert!(!ws.remove(&TestRec::new(5, 1)));
        assert!(ws.is_empty());
    }

    #[test]
    fn drain_returns_sorted_and_empties() {
        let mut ws = WriteStore::new();
        for k in [5u64, 1, 9, 3] {
            ws.insert(TestRec::new(k, k * 10));
        }
        let drained = ws.drain_sorted();
        let keys: Vec<u64> = drained.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert!(ws.is_empty());
    }

    #[test]
    fn range_by_partition_key_filters() {
        let mut ws = WriteStore::new();
        for k in 0..20u64 {
            ws.insert(TestRec::new(k, 0));
        }
        let hits: Vec<u64> = ws.range_by_partition_key(5..=8).map(|r| r.key).collect();
        assert_eq!(hits, vec![5, 6, 7, 8]);
    }

    #[test]
    fn retain_removes_matching() {
        let mut ws: WriteStore<TestRec> = (0..10u64).map(|k| TestRec::new(k, 0)).collect();
        let removed = ws.retain(|r| r.key % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(ws.len(), 5);
        assert!(ws.iter().all(|r| r.key % 2 == 0));
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut ws: WriteStore<TestRec> = [TestRec::new(1, 1)].into_iter().collect();
        ws.extend([TestRec::new(2, 2), TestRec::new(3, 3)]);
        assert_eq!(ws.len(), 3);
        assert!(ws.approx_bytes() > 0);
    }
}
