//! K-way merge of sorted record streams.
//!
//! Queries merge the write store with every relevant read-store run; database
//! maintenance merges all Level-0 runs of a partition into a single run. Both
//! rely on the inputs being individually sorted, which the
//! [`WriteStore`](crate::WriteStore) and [`Run`](crate::Run) guarantee.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Merges already-sorted vectors into one sorted vector, preserving
/// duplicates from every input.
///
/// This is the eager form used by queries (result sets are small) and by
/// maintenance (which immediately feeds the result to a run builder).
pub fn merge_sorted<T: Ord + Clone>(inputs: Vec<Vec<T>>) -> Vec<T> {
    let total: usize = inputs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<(T, usize, usize)>> = BinaryHeap::new();
    for (src, v) in inputs.iter().enumerate() {
        if let Some(first) = v.first() {
            heap.push(Reverse((first.clone(), src, 0)));
        }
    }
    while let Some(Reverse((item, src, idx))) = heap.pop() {
        out.push(item);
        let next = idx + 1;
        if let Some(v) = inputs[src].get(next) {
            heap.push(Reverse((v.clone(), src, next)));
        }
    }
    out
}

/// A lazy k-way merging iterator over sorted input iterators.
///
/// Used when the merged stream is consumed incrementally (e.g. streaming a
/// maintenance merge directly into a [`RunBuilder`](crate::RunBuilder))
/// without materializing all inputs at once.
#[derive(Debug)]
pub struct KWayMerge<T: Ord, I: Iterator<Item = T>> {
    sources: Vec<I>,
    heap: BinaryHeap<Reverse<(T, usize)>>,
}

impl<T: Ord, I: Iterator<Item = T>> KWayMerge<T, I> {
    /// Creates a merge over the given sorted iterators.
    pub fn new(sources: Vec<I>) -> Self {
        let mut sources = sources;
        let mut heap = BinaryHeap::new();
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some(first) = src.next() {
                heap.push(Reverse((first, i)));
            }
        }
        KWayMerge { sources, heap }
    }
}

impl<T: Ord, I: Iterator<Item = T>> Iterator for KWayMerge<T, I> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let Reverse((item, src)) = self.heap.pop()?;
        if let Some(next) = self.sources[src].next() {
            self.heap.push(Reverse((next, src)));
        }
        Some(item)
    }
}

/// A lazy k-way merge over *fallible* sorted streams.
///
/// This is the merge the streaming maintenance pipeline runs on: each source
/// is a [`Run::iter_range`](crate::Run::iter_range) cursor yielding
/// `Result<R>` items, and a device error anywhere must abort the whole merge
/// instead of silently truncating one source (which would make the merged
/// output look complete while missing records). The first `Err` is yielded
/// as an item and the iterator then fuses: no further records are produced,
/// so a consumer writing the stream into a
/// [`RunBuilder`](crate::RunBuilder) never builds a partial run that looks
/// whole.
#[derive(Debug)]
pub struct TryKWayMerge<T: Ord, E, I: Iterator<Item = Result<T, E>>> {
    sources: Vec<I>,
    heap: BinaryHeap<Reverse<(T, usize)>>,
    /// Error hit while priming the heap or refilling a source, delivered on
    /// the next `next()` call.
    pending_error: Option<E>,
    done: bool,
}

impl<T: Ord, E, I: Iterator<Item = Result<T, E>>> TryKWayMerge<T, E, I> {
    /// Creates a merge over the given individually sorted fallible streams.
    pub fn new(sources: Vec<I>) -> Self {
        let mut sources = sources;
        let mut heap = BinaryHeap::new();
        let mut pending_error = None;
        for (i, src) in sources.iter_mut().enumerate() {
            match src.next() {
                Some(Ok(first)) => heap.push(Reverse((first, i))),
                Some(Err(e)) => {
                    pending_error = Some(e);
                    break;
                }
                None => {}
            }
        }
        TryKWayMerge {
            sources,
            heap,
            pending_error,
            done: false,
        }
    }
}

impl<T: Ord, E, I: Iterator<Item = Result<T, E>>> Iterator for TryKWayMerge<T, E, I> {
    type Item = Result<T, E>;

    fn next(&mut self) -> Option<Result<T, E>> {
        if self.done {
            return None;
        }
        if let Some(e) = self.pending_error.take() {
            self.done = true;
            return Some(Err(e));
        }
        let Some(Reverse((item, src))) = self.heap.pop() else {
            self.done = true;
            return None;
        };
        match self.sources[src].next() {
            Some(Ok(next)) => self.heap.push(Reverse((next, src))),
            Some(Err(e)) => {
                // Deliver the record already popped (it is correct and in
                // order), then fail on the following call.
                self.pending_error = Some(e);
            }
            None => {}
        }
        Some(Ok(item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_two_sorted_vectors() {
        let merged = merge_sorted(vec![vec![1, 3, 5], vec![2, 4, 6]]);
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_preserves_duplicates() {
        let merged = merge_sorted(vec![vec![1, 2, 2], vec![2, 3]]);
        assert_eq!(merged, vec![1, 2, 2, 2, 3]);
    }

    #[test]
    fn merge_handles_empty_inputs() {
        let merged: Vec<i32> = merge_sorted(vec![vec![], vec![1], vec![]]);
        assert_eq!(merged, vec![1]);
        let empty: Vec<i32> = merge_sorted(vec![]);
        assert!(empty.is_empty());
    }

    #[test]
    fn kway_merge_is_lazy_and_sorted() {
        let a = vec![1u64, 4, 7].into_iter();
        let b = vec![2u64, 5, 8].into_iter();
        let c = vec![3u64, 6, 9].into_iter();
        let merged: Vec<u64> = KWayMerge::new(vec![a, b, c]).collect();
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn kway_merge_many_skewed_sources() {
        let sources: Vec<std::vec::IntoIter<u64>> = (0..16u64)
            .map(|s| (0..100).map(|i| i * 16 + s).collect::<Vec<_>>().into_iter())
            .collect();
        let merged: Vec<u64> = KWayMerge::new(sources).collect();
        assert_eq!(merged.len(), 1600);
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn kway_merge_with_no_sources_is_empty() {
        let merged: Vec<u64> = KWayMerge::new(Vec::<std::vec::IntoIter<u64>>::new()).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn kway_merge_with_empty_and_nonempty_sources() {
        let sources = vec![
            Vec::<u64>::new().into_iter(),
            vec![2, 4].into_iter(),
            Vec::new().into_iter(),
            vec![1, 3].into_iter(),
        ];
        let merged: Vec<u64> = KWayMerge::new(sources).collect();
        assert_eq!(merged, vec![1, 2, 3, 4]);
    }

    #[test]
    fn kway_merge_single_source_is_a_passthrough() {
        let source = vec![vec![1u64, 1, 2, 5, 9].into_iter()];
        let merged: Vec<u64> = KWayMerge::new(source).collect();
        assert_eq!(merged, vec![1, 1, 2, 5, 9]);
    }

    #[test]
    fn kway_merge_all_duplicate_inputs_preserves_multiplicity() {
        let sources: Vec<std::vec::IntoIter<u64>> =
            (0..4).map(|_| vec![7u64; 10].into_iter()).collect();
        let merged: Vec<u64> = KWayMerge::new(sources).collect();
        assert_eq!(merged, vec![7u64; 40]);

        let eager = merge_sorted(vec![vec![7u64; 10]; 4]);
        assert_eq!(eager, merged, "lazy and eager merges agree on duplicates");
    }

    #[test]
    fn try_kway_merge_without_errors_matches_infallible_merge() {
        let sources: Vec<_> = vec![vec![1u64, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]
            .into_iter()
            .map(|v| v.into_iter().map(Ok::<u64, ()>))
            .collect();
        let merged: Result<Vec<u64>, ()> = TryKWayMerge::new(sources).collect();
        assert_eq!(merged.unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn try_kway_merge_surfaces_the_first_error_and_fuses() {
        let good = vec![Ok(1u64), Ok(5)].into_iter();
        let bad = vec![Ok(2u64), Err("boom"), Ok(4)].into_iter();
        let mut merge = TryKWayMerge::new(vec![good, bad]);
        assert_eq!(merge.next(), Some(Ok(1)));
        assert_eq!(merge.next(), Some(Ok(2)));
        // Refilling the failed source parks the error; it surfaces on the
        // next call and the merge then ends for good.
        assert_eq!(merge.next(), Some(Err("boom")));
        assert_eq!(merge.next(), None);
        assert_eq!(merge.next(), None);
    }

    #[test]
    fn try_kway_merge_error_while_priming() {
        let bad = vec![Err::<u64, _>("early")].into_iter();
        let good = vec![Ok(1u64)].into_iter();
        let mut merge = TryKWayMerge::new(vec![bad, good]);
        assert_eq!(merge.next(), Some(Err("early")));
        assert_eq!(merge.next(), None);
    }

    #[test]
    fn try_kway_merge_empty_sources() {
        let merged: Vec<Result<u64, ()>> =
            TryKWayMerge::new(Vec::<std::vec::IntoIter<Result<u64, ()>>>::new()).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn kway_merge_handles_extreme_keys() {
        let sources = vec![
            vec![0u64, u64::MAX].into_iter(),
            vec![u64::MAX - 1, u64::MAX].into_iter(),
        ];
        let merged: Vec<u64> = KWayMerge::new(sources).collect();
        assert_eq!(merged, vec![0, u64::MAX - 1, u64::MAX, u64::MAX]);
    }
}
