/// Sizing policy for per-run Bloom filters.
///
/// The paper uses four hash functions and sizes the default filter for the
/// maximum number of operations in a consistency point: 32 KB for 32,000
/// operations (≈2.4 % expected false-positive rate), shrinking the filter by
/// halving when a run contains fewer records, and allowing growth up to 1 MB
/// for the Combined read store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomConfig {
    /// Number of hash functions (the paper uses 4).
    pub hashes: u32,
    /// Bits allocated per expected entry before rounding to a power of two.
    /// 32 KB for 32,000 entries ≈ 8.2 bits/entry; we use 8.
    pub bits_per_entry: u32,
    /// Lower bound on the filter size in bits (one halving step never goes
    /// below this).
    pub min_bits: usize,
    /// Upper bound on the filter size in bits (1 MB for the Combined RS).
    pub max_bits: usize,
}

impl Default for BloomConfig {
    fn default() -> Self {
        BloomConfig {
            hashes: 4,
            bits_per_entry: 8,
            min_bits: 1024,
            max_bits: 1024 * 1024 * 8, // 1 MB
        }
    }
}

impl BloomConfig {
    /// Bits to allocate for a filter expected to hold `entries` keys:
    /// `bits_per_entry * entries`, rounded up to a power of two and clamped
    /// to `[min_bits, max_bits]`.
    pub fn bits_for(&self, entries: usize) -> usize {
        let raw = (entries.max(1)).saturating_mul(self.bits_per_entry as usize);
        raw.next_power_of_two().clamp(self.min_bits, self.max_bits)
    }
}

/// A Bloom filter over `u64` keys (physical block numbers).
///
/// The filter supports the halving operation described by Broder &
/// Mitzenmacher and used by the paper to shrink filters of small runs: a
/// power-of-two filter can be compressed to half its size in linear time by
/// OR-ing its two halves, at the cost of a higher false-positive rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    hashes: u32,
    entries: usize,
}

impl BloomFilter {
    /// Creates an empty filter with exactly `num_bits` bits (rounded up to a
    /// non-zero power of two) and `hashes` hash functions.
    pub fn new(num_bits: usize, hashes: u32) -> Self {
        let num_bits = num_bits.max(64).next_power_of_two();
        BloomFilter {
            bits: vec![0u64; num_bits / 64],
            num_bits,
            hashes: hashes.max(1),
            entries: 0,
        }
    }

    /// Creates a filter sized for `entries` keys according to `config`.
    pub fn for_entries(entries: usize, config: &BloomConfig) -> Self {
        Self::new(config.bits_for(entries), config.hashes)
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of keys inserted so far.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Memory consumed by the bit array, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> u32 {
        self.hashes
    }

    /// The raw 64-bit words of the bit array, for persisting the filter in a
    /// consistency-point manifest.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Reconstructs a filter from words previously captured via
    /// [`words`](Self::words). `words.len()` must be a non-zero power of two
    /// (every filter this type builds satisfies that); other lengths are
    /// rounded up with zero-fill, which can only make the filter report
    /// false negatives for keys it never saw — callers validating manifests
    /// should reject such lengths upstream.
    pub fn from_parts(mut words: Vec<u64>, hashes: u32, entries: usize) -> Self {
        let len = words.len().max(1).next_power_of_two();
        words.resize(len, 0);
        BloomFilter {
            num_bits: len * 64,
            bits: words,
            hashes: hashes.max(1),
            entries,
        }
    }

    fn positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        // Two independent 64-bit mixes combined with double hashing
        // (Kirsch–Mitzenmacher) give the k probe positions.
        let h1 = splitmix64(key ^ 0x9e37_79b9_7f4a_7c15);
        let h2 = splitmix64(key.rotate_left(31) ^ 0xbf58_476d_1ce4_e5b9) | 1;
        let mask = (self.num_bits - 1) as u64;
        (0..self.hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) & mask) as usize)
    }

    /// Inserts `key` into the filter.
    pub fn insert(&mut self, key: u64) {
        let positions: Vec<usize> = self.positions(key).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1 << (pos % 64);
        }
        self.entries += 1;
    }

    /// Returns `true` if `key` *may* have been inserted; `false` means it
    /// definitely was not.
    pub fn may_contain(&self, key: u64) -> bool {
        self.positions(key)
            .all(|pos| self.bits[pos / 64] & (1 << (pos % 64)) != 0)
    }

    /// Returns `true` if any key in `min..=max` may be present.
    ///
    /// For small ranges each key is probed individually; for ranges larger
    /// than `probe_limit` the filter conservatively answers `true`, since
    /// probing would cost more than simply reading the run.
    pub fn may_contain_range(&self, min: u64, max: u64, probe_limit: u64) -> bool {
        if min > max {
            return false;
        }
        // `max - min` (not +1) avoids overflow when the range spans the full
        // key space; the off-by-one only makes the answer more conservative.
        if max - min >= probe_limit {
            return true;
        }
        (min..=max).any(|k| self.may_contain(k))
    }

    /// Halves the filter size by OR-ing its upper half onto its lower half.
    ///
    /// Returns `false` (and leaves the filter unchanged) once the filter has
    /// reached 64 bits, the minimum representable size.
    pub fn halve(&mut self) -> bool {
        if self.num_bits <= 64 {
            return false;
        }
        let half_words = self.bits.len() / 2;
        for i in 0..half_words {
            let upper = self.bits[half_words + i];
            self.bits[i] |= upper;
        }
        self.bits.truncate(half_words);
        self.num_bits /= 2;
        true
    }

    /// Repeatedly halves the filter until it is no larger than
    /// `target_bits` (or cannot shrink further). Used to right-size the
    /// default filter when a run holds fewer records than the sizing assumed.
    pub fn shrink_to(&mut self, target_bits: usize) {
        while self.num_bits > target_bits.max(64) {
            if !self.halve() {
                break;
            }
        }
    }

    /// Estimated false-positive probability given the current load.
    pub fn estimated_fp_rate(&self) -> f64 {
        let k = self.hashes as f64;
        let n = self.entries as f64;
        let m = self.num_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_entries(1000, &BloomConfig::default());
        for k in (0..1000u64).map(|i| i * 37 + 5) {
            f.insert(k);
        }
        for k in (0..1000u64).map(|i| i * 37 + 5) {
            assert!(f.may_contain(k), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f = BloomFilter::for_entries(32_000, &BloomConfig::default());
        for k in 0..32_000u64 {
            f.insert(k);
        }
        let fps = (1_000_000..1_100_000u64)
            .filter(|&k| f.may_contain(k))
            .count();
        let rate = fps as f64 / 100_000.0;
        // Paper quotes ~2.4% expected; allow generous slack.
        assert!(rate < 0.06, "false positive rate too high: {rate}");
        assert!(f.estimated_fp_rate() < 0.06);
    }

    #[test]
    fn default_sizing_matches_paper() {
        let cfg = BloomConfig::default();
        // 32,000 ops -> 32 KB (= 262,144 bits) in the paper; with 8 bits per
        // entry rounded to a power of two we land on exactly 256 Kibit.
        assert_eq!(cfg.bits_for(32_000), 262_144);
        assert_eq!(
            BloomFilter::for_entries(32_000, &cfg).size_bytes(),
            32 * 1024
        );
        // Cap at 1 MB.
        assert_eq!(cfg.bits_for(10_000_000), 1024 * 1024 * 8);
    }

    #[test]
    fn halving_preserves_membership() {
        let mut f = BloomFilter::new(4096, 4);
        let keys: Vec<u64> = (0..100).map(|i| i * 13 + 1).collect();
        for &k in &keys {
            f.insert(k);
        }
        assert!(f.halve());
        assert_eq!(f.num_bits(), 2048);
        for &k in &keys {
            assert!(
                f.may_contain(k),
                "halving introduced a false negative for {k}"
            );
        }
    }

    #[test]
    fn halve_stops_at_minimum() {
        let mut f = BloomFilter::new(64, 4);
        assert!(!f.halve());
        assert_eq!(f.num_bits(), 64);
    }

    #[test]
    fn shrink_to_target() {
        let mut f = BloomFilter::new(1 << 20, 4);
        f.insert(1);
        f.shrink_to(1 << 10);
        assert_eq!(f.num_bits(), 1 << 10);
        assert!(f.may_contain(1));
    }

    #[test]
    fn range_membership() {
        let mut f = BloomFilter::new(4096, 4);
        f.insert(500);
        assert!(f.may_contain_range(490, 510, 64));
        assert!(
            f.may_contain_range(0, u64::MAX, 64),
            "huge ranges answer true"
        );
        assert!(!f.may_contain_range(10, 5, 64), "empty range answers false");
        // A range of unrelated keys is (very likely) rejected.
        let miss = f.may_contain_range(100_000, 100_003, 64);
        assert!(!miss || f.estimated_fp_rate() > 0.0);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 4);
        assert!(!f.may_contain(1));
        assert!(!f.may_contain(u64::MAX));
        assert_eq!(f.entries(), 0);
    }
}
