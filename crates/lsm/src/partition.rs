/// Horizontal partitioning of a table by partition key (physical block
/// number).
///
/// The paper partitions RS files "by block number to ensure that each of the
/// files is of a manageable size", using fixed sequential ranges of block
/// numbers per partition; maintenance can then process partitions
/// independently (and, in future work, in parallel on different disks or
/// cores). This type maps a partition key to a partition index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioning {
    /// Number of partitions (at least 1).
    partitions: u32,
    /// Width of each partition's key range; the final partition absorbs the
    /// remainder of the key space.
    width: u64,
}

impl Default for Partitioning {
    fn default() -> Self {
        Partitioning::single()
    }
}

impl Partitioning {
    /// A single partition covering the whole key space (partitioning
    /// effectively disabled).
    pub fn single() -> Self {
        Partitioning {
            partitions: 1,
            width: u64::MAX,
        }
    }

    /// Fixed sequential ranges: `partitions` partitions each `width` keys
    /// wide; keys at or beyond `partitions * width` fall into the last
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero or `width` is zero.
    pub fn fixed_ranges(partitions: u32, width: u64) -> Self {
        assert!(partitions > 0, "at least one partition is required");
        assert!(width > 0, "partition width must be positive");
        Partitioning { partitions, width }
    }

    /// Sequential ranges sized so that a device of `total_keys` blocks is
    /// split into `partitions` equal pieces.
    pub fn for_key_space(partitions: u32, total_keys: u64) -> Self {
        let partitions = partitions.max(1);
        let width = (total_keys / partitions as u64).max(1);
        Partitioning { partitions, width }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitions
    }

    /// Width of each partition's key range (the last partition absorbs the
    /// remainder). Together with [`partition_count`](Self::partition_count)
    /// this fully describes the scheme, which is how a consistency-point
    /// manifest persists it.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Reconstructs a scheme from its persisted `(partitions, width)` pair.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero (a corrupt manifest should be rejected
    /// before calling this).
    pub fn from_raw(partitions: u32, width: u64) -> Self {
        Self::fixed_ranges(partitions, width)
    }

    /// The partition index for `key`.
    pub fn partition_of(&self, key: u64) -> u32 {
        if self.partitions == 1 {
            return 0;
        }
        ((key / self.width).min(self.partitions as u64 - 1)) as u32
    }

    /// The inclusive key range `[min, max]` covered by partition `index`.
    ///
    /// Arithmetic saturates so that configurations whose widths multiply
    /// past `u64::MAX` still describe a valid (empty-at-the-top) range
    /// rather than overflowing.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn key_range(&self, index: u32) -> (u64, u64) {
        assert!(index < self.partitions, "partition index out of range");
        if self.partitions == 1 {
            return (0, u64::MAX);
        }
        let min = (index as u64).saturating_mul(self.width);
        let max = if index == self.partitions - 1 {
            u64::MAX
        } else {
            (index as u64 + 1)
                .saturating_mul(self.width)
                .saturating_sub(1)
        };
        (min, max)
    }

    /// The partitions overlapped by the inclusive key range `[min, max]`.
    pub fn partitions_for_range(&self, min: u64, max: u64) -> std::ops::RangeInclusive<u32> {
        let lo = self.partition_of(min);
        let hi = self.partition_of(max);
        lo..=hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_maps_everything_to_zero() {
        let p = Partitioning::single();
        assert_eq!(p.partition_count(), 1);
        assert_eq!(p.partition_of(0), 0);
        assert_eq!(p.partition_of(u64::MAX), 0);
        assert_eq!(p.key_range(0), (0, u64::MAX));
    }

    #[test]
    fn fixed_ranges_assign_sequentially() {
        let p = Partitioning::fixed_ranges(4, 100);
        assert_eq!(p.partition_of(0), 0);
        assert_eq!(p.partition_of(99), 0);
        assert_eq!(p.partition_of(100), 1);
        assert_eq!(p.partition_of(399), 3);
        // Overflow keys land in the last partition.
        assert_eq!(p.partition_of(10_000), 3);
        assert_eq!(p.key_range(1), (100, 199));
        assert_eq!(p.key_range(3), (300, u64::MAX));
    }

    #[test]
    fn for_key_space_divides_evenly() {
        let p = Partitioning::for_key_space(8, 8_000);
        assert_eq!(p.partition_count(), 8);
        assert_eq!(p.partition_of(999), 0);
        assert_eq!(p.partition_of(1_000), 1);
        assert_eq!(p.partition_of(7_999), 7);
    }

    #[test]
    fn partitions_for_range_spans() {
        let p = Partitioning::fixed_ranges(4, 100);
        assert_eq!(p.partitions_for_range(50, 250), 0..=2);
        assert_eq!(p.partitions_for_range(150, 150), 1..=1);
    }

    #[test]
    fn extreme_keys_land_in_the_last_partition() {
        let p = Partitioning::fixed_ranges(4, 100);
        assert_eq!(p.partition_of(u64::MAX), 3);
        assert_eq!(p.partitions_for_range(u64::MAX, u64::MAX), 3..=3);
        assert_eq!(p.partitions_for_range(0, u64::MAX), 0..=3);
        assert_eq!(p.key_range(3).1, u64::MAX);
        // Single partition: the whole key space, including the top key.
        let single = Partitioning::single();
        assert_eq!(single.partition_of(u64::MAX), 0);
        assert_eq!(single.partitions_for_range(u64::MAX - 1, u64::MAX), 0..=0);
    }

    #[test]
    fn huge_widths_do_not_overflow_key_ranges() {
        let p = Partitioning::fixed_ranges(4, u64::MAX / 2);
        // The whole key space fits in the first two partitions; the top key
        // lands just past the second boundary.
        assert_eq!(p.partition_of(0), 0);
        assert_eq!(p.partition_of(u64::MAX / 2), 1);
        assert_eq!(p.partition_of(u64::MAX), 2);
        // Partitions 2 and 3's nominal bounds exceed u64::MAX; arithmetic
        // saturates instead of panicking.
        assert_eq!(p.key_range(2), (u64::MAX - 1, u64::MAX - 1));
        assert_eq!(p.key_range(3), (u64::MAX, u64::MAX));
        // Partition indices stay monotone in the key.
        let keys = [0u64, 1, u64::MAX / 2, u64::MAX - 2, u64::MAX];
        assert!(keys
            .windows(2)
            .all(|w| p.partition_of(w[0]) <= p.partition_of(w[1])));
        // And range queries over the full space cover every useful partition.
        assert_eq!(p.partitions_for_range(0, u64::MAX), 0..=2);
    }

    #[test]
    fn partition_boundaries_are_exclusive_on_the_right() {
        let p = Partitioning::fixed_ranges(3, 1_000);
        for boundary in [1_000u64, 2_000] {
            assert_eq!(p.partition_of(boundary - 1) + 1, p.partition_of(boundary));
            let (lo, _) = p.key_range(p.partition_of(boundary));
            assert_eq!(lo, boundary, "boundary key starts its partition");
        }
        // A range query straddling a boundary touches both partitions.
        assert_eq!(p.partitions_for_range(999, 1_000), 0..=1);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        Partitioning::fixed_ranges(0, 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn key_range_out_of_bounds_panics() {
        Partitioning::fixed_ranges(2, 10).key_range(2);
    }
}
