//! The synthetic stochastic workload (paper Section 6.2.1).
//!
//! The generator "submits write requests as rapidly as possible", performing
//! at least 32,000 block writes between consistency points, with file create
//! / delete / update rates mirroring the EECS03 trace, 90 % small files, and
//! roughly 7 writable-clone creations (and deletions) per 100 CPs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use backlog::{InodeNo, LineId};
use fsim::{BackrefProvider, FileSystem, FsCpReport};

use crate::error::Result;

/// Configuration of the synthetic workload.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Minimum reference operations between two consistency points
    /// (32,000 in the paper's WAFL-like configuration).
    pub ops_per_cp: u64,
    /// Relative rate of file creations.
    pub create_weight: u32,
    /// Relative rate of file deletions.
    pub delete_weight: u32,
    /// Relative rate of file overwrites (updates).
    pub update_weight: u32,
    /// Fraction of created files that are small (0.9 in the paper,
    /// "reflecting home directories of developers").
    pub small_file_fraction: f64,
    /// Size range (blocks) of small files.
    pub small_file_blocks: (u64, u64),
    /// Size range (blocks) of large files.
    pub large_file_blocks: (u64, u64),
    /// Expected writable-clone creations per 100 CPs (~7 in the paper).
    pub clones_per_100_cps: f64,
    /// Maximum number of live clones before the oldest is deleted.
    pub max_live_clones: usize,
    /// Fraction of update operations directed at a live clone instead of the
    /// root line.
    pub clone_update_fraction: f64,
    /// Minimum number of live files kept on the root line (deletions are
    /// suppressed below this).
    pub min_live_files: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            ops_per_cp: 32_000,
            create_weight: 35,
            delete_weight: 30,
            update_weight: 35,
            small_file_fraction: 0.9,
            small_file_blocks: (1, 8),
            large_file_blocks: (32, 256),
            clones_per_100_cps: 7.0,
            max_live_clones: 4,
            clone_update_fraction: 0.05,
            min_live_files: 64,
            seed: 0xFA57_2010,
        }
    }
}

impl SyntheticConfig {
    /// A scaled-down configuration for unit tests and smoke runs.
    pub fn small() -> Self {
        SyntheticConfig {
            ops_per_cp: 500,
            min_live_files: 16,
            ..Default::default()
        }
    }
}

/// The synthetic workload driver.
#[derive(Debug)]
pub struct SyntheticWorkload {
    config: SyntheticConfig,
    rng: StdRng,
    /// Live files per line, maintained incrementally to avoid rescanning the
    /// simulator's tables.
    files: Vec<(LineId, Vec<InodeNo>)>,
    clones: Vec<LineId>,
    cps_run: u64,
}

impl SyntheticWorkload {
    /// Creates a workload driver.
    pub fn new(config: SyntheticConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SyntheticWorkload {
            config,
            rng,
            files: vec![(LineId::ROOT, Vec::new())],
            clones: Vec::new(),
            cps_run: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Number of consistency points driven so far.
    pub fn cps_run(&self) -> u64 {
        self.cps_run
    }

    fn pick_file_size(&mut self) -> u64 {
        if self.rng.gen_bool(self.config.small_file_fraction) {
            self.rng
                .gen_range(self.config.small_file_blocks.0..=self.config.small_file_blocks.1)
        } else {
            self.rng
                .gen_range(self.config.large_file_blocks.0..=self.config.large_file_blocks.1)
        }
    }

    fn line_files_mut(&mut self, line: LineId) -> &mut Vec<InodeNo> {
        if let Some(idx) = self.files.iter().position(|(l, _)| *l == line) {
            &mut self.files[idx].1
        } else {
            self.files.push((line, Vec::new()));
            &mut self.files.last_mut().expect("just pushed").1
        }
    }

    /// Performs enough operations to fill one CP interval, then takes the
    /// consistency point and (probabilistically) performs clone churn.
    ///
    /// # Errors
    ///
    /// Propagates simulator and provider errors.
    pub fn run_cp<P: BackrefProvider>(&mut self, fs: &mut FileSystem<P>) -> Result<FsCpReport> {
        let target_ops = self.config.ops_per_cp;
        let start_ops = fs.stats().block_ops;
        while fs.stats().block_ops - start_ops < target_ops {
            self.one_operation(fs)?;
        }
        self.clone_churn(fs)?;
        let report = fs.take_consistency_point()?;
        self.cps_run += 1;
        Ok(report)
    }

    /// Runs `cps` consistency points, invoking `per_cp` after each.
    ///
    /// # Errors
    ///
    /// Propagates simulator and provider errors.
    pub fn run<P: BackrefProvider>(
        &mut self,
        fs: &mut FileSystem<P>,
        cps: u64,
        mut per_cp: impl FnMut(u64, &FsCpReport),
    ) -> Result<()> {
        for i in 0..cps {
            let report = self.run_cp(fs)?;
            per_cp(i, &report);
        }
        Ok(())
    }

    fn one_operation<P: BackrefProvider>(&mut self, fs: &mut FileSystem<P>) -> Result<()> {
        let total =
            self.config.create_weight + self.config.delete_weight + self.config.update_weight;
        let roll = self.rng.gen_range(0..total);
        let root_file_count = self.line_files_mut(LineId::ROOT).len();
        if roll < self.config.create_weight || root_file_count < self.config.min_live_files {
            // Create a file on the root line.
            let size = self.pick_file_size();
            let inode = fs.create_file(LineId::ROOT, size)?;
            self.line_files_mut(LineId::ROOT).push(inode);
        } else if roll < self.config.create_weight + self.config.delete_weight {
            // Delete a random root file.
            let len = self.line_files_mut(LineId::ROOT).len();
            if len > 0 {
                let idx = self.rng.gen_range(0..len);
                let inode = self.line_files_mut(LineId::ROOT).swap_remove(idx);
                fs.delete_file(LineId::ROOT, inode)?;
            }
        } else {
            // Update (copy-on-write overwrite) of a random file, occasionally
            // on a clone.
            let line = if !self.clones.is_empty()
                && self.rng.gen_bool(self.config.clone_update_fraction)
            {
                self.clones[self.rng.gen_range(0..self.clones.len())]
            } else {
                LineId::ROOT
            };
            let len = self.line_files_mut(line).len();
            if len == 0 {
                return Ok(());
            }
            let idx = self.rng.gen_range(0..len);
            let inode = self.line_files_mut(line)[idx];
            let len = match fs.file_len(line, inode) {
                Ok(len) if len > 0 => len,
                _ => return Ok(()),
            };
            let offset = self.rng.gen_range(0..len);
            let span = self.rng.gen_range(1..=4.min(len - offset).max(1));
            fs.overwrite(line, inode, offset, span)?;
        }
        Ok(())
    }

    fn clone_churn<P: BackrefProvider>(&mut self, fs: &mut FileSystem<P>) -> Result<()> {
        let p = self.config.clones_per_100_cps / 100.0;
        if p > 0.0 && self.rng.gen_bool(p.min(1.0)) {
            // Prefer an existing retained snapshot, otherwise take one now.
            let snap = match fs.retained_snapshots().into_iter().last() {
                Some(s) => s,
                None => fs.take_snapshot(LineId::ROOT)?,
            };
            let clone = fs.create_clone(snap)?;
            let clone_files = fs.files(clone)?;
            self.files.push((clone, clone_files));
            self.clones.push(clone);
            if self.clones.len() > self.config.max_live_clones {
                let victim = self.clones.remove(0);
                fs.delete_clone(victim)?;
                self.files.retain(|(l, _)| *l != victim);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backlog::BacklogConfig;
    use fsim::{BacklogProvider, FsConfig, NullProvider, SnapshotPolicy};

    #[test]
    fn fills_each_cp_with_the_configured_ops() {
        let mut wl = SyntheticWorkload::new(SyntheticConfig::small());
        let mut fs = FileSystem::new(NullProvider::new(), FsConfig::default());
        for _ in 0..5 {
            let report = wl.run_cp(&mut fs).unwrap();
            assert!(report.block_ops >= 500, "CP had {} ops", report.block_ops);
        }
        assert_eq!(wl.cps_run(), 5);
        assert!(fs.stats().files_created > 0);
    }

    #[test]
    fn workload_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let mut cfg = SyntheticConfig::small();
            cfg.seed = seed;
            let mut wl = SyntheticWorkload::new(cfg);
            let mut fs = FileSystem::new(NullProvider::new(), FsConfig::default().with_seed(1));
            wl.run(&mut fs, 3, |_, _| {}).unwrap();
            (
                fs.stats().block_ops,
                fs.stats().files_created,
                fs.stats().files_deleted,
            )
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn clone_churn_creates_and_deletes_clones() {
        let mut cfg = SyntheticConfig::small();
        cfg.clones_per_100_cps = 100.0; // force a clone every CP
        cfg.max_live_clones = 2;
        let mut wl = SyntheticWorkload::new(cfg);
        let mut fs = FileSystem::new(
            NullProvider::new(),
            FsConfig::default().with_snapshots(SnapshotPolicy::paper_default(2)),
        );
        wl.run(&mut fs, 8, |_, _| {}).unwrap();
        assert!(fs.stats().clones_created >= 6);
        assert!(fs.stats().clones_deleted >= 4);
        assert!(fs.active_lines().len() <= 4);
    }

    #[test]
    fn backlog_database_stays_consistent_under_the_workload() {
        let mut cfg = SyntheticConfig::small();
        cfg.ops_per_cp = 200;
        cfg.clones_per_100_cps = 50.0;
        let mut wl = SyntheticWorkload::new(cfg);
        let mut fs = FileSystem::new(
            BacklogProvider::new(BacklogConfig::default().without_timing()),
            FsConfig::default().with_snapshots(SnapshotPolicy::paper_default(4)),
        );
        wl.run(&mut fs, 12, |_, _| {}).unwrap();
        fs.provider().maintenance().unwrap();
        let expected = fs.expected_refs();
        let report = backlog::verify(fs.provider().engine(), &expected, &[]).unwrap();
        assert!(
            report.is_consistent(),
            "missing {} spurious {}",
            report.missing.len(),
            report.spurious.len()
        );
    }
}
