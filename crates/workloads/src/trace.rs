//! An NFS-trace-shaped workload (paper Section 6.2.2).
//!
//! The paper replays the first 16 days of the EECS03 trace — research
//! activity in the home directories of a university CS department — through
//! fsim with a 10-second CP interval. The trace itself is not
//! redistributable, so this module generates a synthetic trace with the
//! characteristics the paper's figures depend on:
//!
//! * a write-rich mix (one write per two reads; only the writes matter here,
//!   reads never touch back references),
//! * a diurnal load pattern with busy working hours and quiet nights, so some
//!   CP intervals contain very few operations (producing the per-op overhead
//!   spikes of Figure 7),
//! * a period of heavy `setattr`/truncation activity mid-trace (producing the
//!   dip in per-op overhead the paper observes between hours 200 and 250),
//! * file sizes dominated by small files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use backlog::{InodeNo, LineId};
use fsim::{BackrefProvider, FileSystem, FsCpReport};

use crate::error::Result;

/// One logical operation in a trace, addressed by trace-private file IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Create a file of the given size in blocks.
    Create {
        /// Trace-private file identifier.
        file: u64,
        /// File size in blocks.
        blocks: u64,
    },
    /// Overwrite part of a file (copy-on-write).
    Write {
        /// Trace-private file identifier.
        file: u64,
        /// First block offset to overwrite.
        offset: u64,
        /// Number of blocks to overwrite.
        blocks: u64,
    },
    /// Truncate a file to a new length (the dominant effect of the trace's
    /// `setattr` bursts).
    Truncate {
        /// Trace-private file identifier.
        file: u64,
        /// New length in blocks.
        new_len: u64,
    },
    /// Remove a file.
    Remove {
        /// Trace-private file identifier.
        file: u64,
    },
}

/// One timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Seconds since the start of the trace.
    pub time_secs: u64,
    /// The operation.
    pub op: TraceOp,
}

/// Configuration of the synthetic NFS-like trace generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Trace duration in hours (the paper uses 16 days ≈ 384 hours).
    pub hours: u64,
    /// Average write operations per second during peak (working) hours.
    pub peak_ops_per_sec: f64,
    /// Average write operations per second during off-peak hours.
    pub offpeak_ops_per_sec: f64,
    /// Hour range (inclusive start, exclusive end) of the truncation-heavy
    /// period, reproducing the paper's hours ~200-250 dip.
    pub truncate_burst_hours: (u64, u64),
    /// Fraction of operations that are truncations during the burst.
    pub truncate_burst_fraction: f64,
    /// Fraction of created files that are small (1-8 blocks).
    pub small_file_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            hours: 16 * 24,
            peak_ops_per_sec: 60.0,
            offpeak_ops_per_sec: 6.0,
            truncate_burst_hours: (200, 250),
            truncate_burst_fraction: 0.6,
            small_file_fraction: 0.9,
            seed: 0xEEC5_2003,
        }
    }
}

impl TraceConfig {
    /// A scaled-down trace for tests and smoke runs.
    pub fn small() -> Self {
        TraceConfig {
            hours: 6,
            peak_ops_per_sec: 4.0,
            offpeak_ops_per_sec: 1.0,
            truncate_burst_hours: (3, 4),
            ..Default::default()
        }
    }

    /// Whether `hour` falls in the peak (working-hours) part of the diurnal
    /// cycle: 9:00-18:00 on weekdays.
    pub fn is_peak_hour(&self, hour: u64) -> bool {
        let hour_of_day = hour % 24;
        let day = hour / 24;
        let weekday = day % 7 < 5;
        weekday && (9..18).contains(&hour_of_day)
    }
}

/// Generates a synthetic EECS03-like trace lazily, hour by hour.
#[derive(Debug)]
pub struct TraceGenerator {
    config: TraceConfig,
    rng: StdRng,
    next_file: u64,
    live_files: Vec<(u64, u64)>, // (file id, length in blocks)
    hour: u64,
}

impl TraceGenerator {
    /// Creates a generator.
    pub fn new(config: TraceConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        TraceGenerator {
            config,
            rng,
            next_file: 0,
            live_files: Vec::new(),
            hour: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Generates the records for the next hour, or `None` when the trace is
    /// complete.
    pub fn next_hour(&mut self) -> Option<Vec<TraceRecord>> {
        if self.hour >= self.config.hours {
            return None;
        }
        let hour = self.hour;
        self.hour += 1;
        let rate = if self.config.is_peak_hour(hour) {
            self.config.peak_ops_per_sec
        } else {
            self.config.offpeak_ops_per_sec
        };
        let in_burst =
            hour >= self.config.truncate_burst_hours.0 && hour < self.config.truncate_burst_hours.1;
        let ops_this_hour = (rate * 3600.0) as u64;
        let mut records = Vec::with_capacity(ops_this_hour as usize);
        for i in 0..ops_this_hour {
            let time_secs = hour * 3600 + (i * 3600) / ops_this_hour.max(1);
            let op = self.pick_op(in_burst);
            records.push(TraceRecord { time_secs, op });
        }
        Some(records)
    }

    fn pick_op(&mut self, in_burst: bool) -> TraceOp {
        if in_burst
            && !self.live_files.is_empty()
            && self.rng.gen_bool(self.config.truncate_burst_fraction)
        {
            let idx = self.rng.gen_range(0..self.live_files.len());
            let (file, len) = self.live_files[idx];
            let new_len = if len > 1 {
                self.rng.gen_range(0..len)
            } else {
                0
            };
            self.live_files[idx].1 = new_len;
            return TraceOp::Truncate { file, new_len };
        }
        let roll: f64 = self.rng.gen();
        if roll < 0.35 || self.live_files.len() < 32 {
            let blocks = if self.rng.gen_bool(self.config.small_file_fraction) {
                self.rng.gen_range(1..=8)
            } else {
                self.rng.gen_range(16..=128)
            };
            let file = self.next_file;
            self.next_file += 1;
            self.live_files.push((file, blocks));
            TraceOp::Create { file, blocks }
        } else if roll < 0.55 {
            let idx = self.rng.gen_range(0..self.live_files.len());
            let (file, _) = self.live_files.swap_remove(idx);
            TraceOp::Remove { file }
        } else {
            let idx = self.rng.gen_range(0..self.live_files.len());
            let (file, len) = self.live_files[idx];
            let len = len.max(1);
            let offset = self.rng.gen_range(0..len);
            let blocks = self.rng.gen_range(1..=4.min(len - offset).max(1));
            TraceOp::Write {
                file,
                offset,
                blocks,
            }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = Vec<TraceRecord>;

    fn next(&mut self) -> Option<Vec<TraceRecord>> {
        self.next_hour()
    }
}

/// Replays trace records through a simulated file system with a fixed CP
/// interval (10 seconds in the paper's default configuration).
#[derive(Debug)]
pub struct TracePlayer {
    /// Seconds of trace time between consistency points.
    pub cp_interval_secs: u64,
    file_map: std::collections::HashMap<u64, InodeNo>,
    next_cp_time: u64,
}

impl Default for TracePlayer {
    fn default() -> Self {
        Self::new(10)
    }
}

impl TracePlayer {
    /// Creates a player taking a CP every `cp_interval_secs` of trace time.
    pub fn new(cp_interval_secs: u64) -> Self {
        TracePlayer {
            cp_interval_secs: cp_interval_secs.max(1),
            file_map: std::collections::HashMap::new(),
            next_cp_time: cp_interval_secs.max(1),
        }
    }

    /// Replays one batch of records, invoking `on_cp` for every consistency
    /// point taken along the way.
    ///
    /// # Errors
    ///
    /// Propagates simulator and provider errors.
    pub fn play<P: BackrefProvider>(
        &mut self,
        fs: &mut FileSystem<P>,
        records: &[TraceRecord],
        mut on_cp: impl FnMut(u64, &FsCpReport),
    ) -> Result<()> {
        for record in records {
            while record.time_secs >= self.next_cp_time {
                let report = fs.take_consistency_point()?;
                on_cp(self.next_cp_time, &report);
                self.next_cp_time += self.cp_interval_secs;
            }
            self.apply(fs, record.op)?;
        }
        Ok(())
    }

    /// Flushes a final consistency point at the end of the trace.
    ///
    /// # Errors
    ///
    /// Propagates simulator and provider errors.
    pub fn finish<P: BackrefProvider>(&mut self, fs: &mut FileSystem<P>) -> Result<FsCpReport> {
        Ok(fs.take_consistency_point()?)
    }

    fn apply<P: BackrefProvider>(&mut self, fs: &mut FileSystem<P>, op: TraceOp) -> Result<()> {
        match op {
            TraceOp::Create { file, blocks } => {
                let inode = fs.create_file(LineId::ROOT, blocks)?;
                self.file_map.insert(file, inode);
            }
            TraceOp::Write {
                file,
                offset,
                blocks,
            } => {
                if let Some(&inode) = self.file_map.get(&file) {
                    let len = fs.file_len(LineId::ROOT, inode)?;
                    let offset = offset.min(len);
                    fs.overwrite(LineId::ROOT, inode, offset, blocks)?;
                }
            }
            TraceOp::Truncate { file, new_len } => {
                if let Some(&inode) = self.file_map.get(&file) {
                    fs.truncate(LineId::ROOT, inode, new_len)?;
                }
            }
            TraceOp::Remove { file } => {
                if let Some(inode) = self.file_map.remove(&file) {
                    fs.delete_file(LineId::ROOT, inode)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backlog::BacklogConfig;
    use fsim::{BacklogProvider, FsConfig, NullProvider};

    #[test]
    fn generator_produces_expected_hours_and_is_deterministic() {
        let gen = |seed| {
            let mut cfg = TraceConfig::small();
            cfg.seed = seed;
            TraceGenerator::new(cfg)
                .flatten()
                .collect::<Vec<TraceRecord>>()
        };
        let a = gen(1);
        let b = gen(1);
        let c = gen(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        // Timestamps are non-decreasing.
        assert!(a.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
    }

    #[test]
    fn diurnal_pattern_varies_load() {
        let cfg = TraceConfig {
            hours: 48,
            ..TraceConfig::default()
        };
        assert!(cfg.is_peak_hour(10), "10:00 on day 0 (a weekday) is peak");
        assert!(!cfg.is_peak_hour(3), "03:00 is off-peak");
        let mut g = TraceGenerator::new(TraceConfig {
            hours: 24,
            ..TraceConfig::default()
        });
        let mut per_hour = Vec::new();
        while let Some(records) = g.next_hour() {
            per_hour.push(records.len());
        }
        let peak = per_hour[10];
        let night = per_hour[3];
        assert!(peak > night * 5, "peak {peak} should dwarf night {night}");
    }

    #[test]
    fn burst_hours_contain_truncations() {
        let cfg = TraceConfig::small();
        let burst = cfg.truncate_burst_hours;
        let mut g = TraceGenerator::new(cfg);
        let mut truncates_in_burst = 0;
        let mut hour = 0;
        while let Some(records) = g.next_hour() {
            if hour >= burst.0 && hour < burst.1 {
                truncates_in_burst += records
                    .iter()
                    .filter(|r| matches!(r.op, TraceOp::Truncate { .. }))
                    .count();
            }
            hour += 1;
        }
        assert!(truncates_in_burst > 0);
    }

    #[test]
    fn player_replays_and_takes_cps() {
        let mut cfg = TraceConfig::small();
        cfg.hours = 1;
        cfg.peak_ops_per_sec = 2.0;
        cfg.offpeak_ops_per_sec = 2.0;
        let records: Vec<TraceRecord> = TraceGenerator::new(cfg).flatten().collect();
        let mut fs = FileSystem::new(NullProvider::new(), FsConfig::default());
        let mut player = TracePlayer::new(10);
        let mut cps = 0;
        player.play(&mut fs, &records, |_, _| cps += 1).unwrap();
        player.finish(&mut fs).unwrap();
        assert!(
            cps > 100,
            "one hour at a 10 s CP interval yields ~360 CPs, got {cps}"
        );
        assert!(fs.stats().files_created > 0);
    }

    #[test]
    fn replayed_trace_keeps_backlog_consistent() {
        let mut cfg = TraceConfig::small();
        cfg.hours = 2;
        cfg.peak_ops_per_sec = 1.0;
        cfg.offpeak_ops_per_sec = 1.0;
        let records: Vec<TraceRecord> = TraceGenerator::new(cfg).flatten().collect();
        let mut fs = FileSystem::new(
            BacklogProvider::new(BacklogConfig::default().without_timing()),
            FsConfig::default(),
        );
        let mut player = TracePlayer::new(60);
        player.play(&mut fs, &records, |_, _| {}).unwrap();
        player.finish(&mut fs).unwrap();
        let expected = fs.expected_refs();
        let report = backlog::verify(fs.provider().engine(), &expected, &[]).unwrap();
        assert!(report.is_consistent(), "{report:?}");
    }
}
