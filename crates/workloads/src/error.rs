use std::fmt;

use fsim::FsError;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, WorkloadError>;

/// Errors returned by workload drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The simulated file system (or its back-reference provider) failed.
    Fs(FsError),
    /// A workload was configured with invalid parameters.
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Fs(e) => write!(f, "file system error: {e}"),
            WorkloadError::InvalidConfig { reason } => {
                write!(f, "invalid workload configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for WorkloadError {
    fn from(e: FsError) -> Self {
        WorkloadError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backlog::LineId;

    #[test]
    fn conversion_and_display() {
        let e: WorkloadError = FsError::NoSuchLine { line: LineId(1) }.into();
        assert!(e.to_string().contains("file system error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = WorkloadError::InvalidConfig {
            reason: "zero ops".into(),
        };
        assert!(e.to_string().contains("zero ops"));
    }
}
