//! Workload generators for the Backlog reproduction.
//!
//! Each module reproduces one of the workload families the FAST'10 paper
//! evaluates with:
//!
//! * [`synthetic`] — the stochastic "as fast as possible" workload of
//!   Section 6.2.1 (≥32,000 ops per CP, 90 % small files, EECS03-like
//!   create/delete/update mix, ~7 clones per 100 CPs). Drives Figures 5
//!   and 6.
//! * [`trace`] — a synthetic NFS trace with the EECS03 trace's load shape
//!   (diurnal pattern, write-rich mix, a truncation-heavy period), replayed
//!   at a 10-second CP interval. Drives Figures 7 and 8.
//! * [`microbench`] — the create/delete file microbenchmarks of Table 1.
//! * [`apps`] — dbench-, FileBench-varmail- and PostMark-shaped op mixes for
//!   the application rows of Table 1.
//!
//! All generators are deterministic given their seed, so experiments can be
//! replayed bit-for-bit against different back-reference providers.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod apps;
mod error;
pub mod microbench;
pub mod synthetic;
pub mod trace;

pub use apps::{run_app, AppConfig, AppProfile, AppResult};
pub use error::{Result, WorkloadError};
pub use microbench::{run_create, run_delete, MicrobenchResult, MicrobenchSpec};
pub use synthetic::{SyntheticConfig, SyntheticWorkload};
pub use trace::{TraceConfig, TraceGenerator, TraceOp, TracePlayer, TraceRecord};
