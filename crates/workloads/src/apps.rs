//! Application-style workloads (paper Table 1, rows 7–9).
//!
//! The paper runs three application benchmarks against its btrfs port:
//! dbench (a CIFS file-server workload), FileBench's /var/mail profile (a
//! multi-threaded mail-server workload) and PostMark (a small-file
//! workload). We reproduce the *operation mixes* those benchmarks issue —
//! which is all that matters for back-reference overhead, since reads never
//! touch the back-reference database — as deterministic generators over the
//! simulator API. Reported numbers are operations per second (PostMark,
//! FileBench) or an aggregate throughput proxy (dbench).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use backlog::{InodeNo, LineId};
use fsim::{BackrefProvider, FileSystem};

use crate::error::Result;

/// Which application profile to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppProfile {
    /// dbench: CIFS-style mix — bursts of file creation, sequential writes,
    /// frequent small overwrites, periodic deletes.
    Dbench,
    /// FileBench /var/mail: append-heavy small files with frequent syncs
    /// (each "delivery" is create-append-sync, each "read+delete" removes).
    Varmail,
    /// PostMark: small-file create/append/delete transactions.
    Postmark,
}

impl AppProfile {
    /// A short label used in benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            AppProfile::Dbench => "dbench (CIFS)",
            AppProfile::Varmail => "filebench /var/mail",
            AppProfile::Postmark => "postmark",
        }
    }
}

/// Configuration of an application workload run.
#[derive(Debug, Clone, Copy)]
pub struct AppConfig {
    /// The profile to emulate.
    pub profile: AppProfile,
    /// Number of application-level transactions to run.
    pub transactions: u64,
    /// File-system operations between consistency points.
    pub ops_per_cp: u64,
    /// RNG seed.
    pub seed: u64,
}

impl AppConfig {
    /// A reasonable default for the given profile.
    pub fn new(profile: AppProfile, transactions: u64) -> Self {
        AppConfig {
            profile,
            transactions,
            ops_per_cp: 2048,
            seed: 0xA22,
        }
    }
}

/// Result of an application workload run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AppResult {
    /// Application-level transactions completed.
    pub transactions: u64,
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
    /// Provider page writes during the run.
    pub provider_pages_written: u64,
    /// Consistency points taken during the run.
    pub consistency_points: u64,
}

impl AppResult {
    /// Transactions per second (the unit the paper reports for PostMark and
    /// FileBench, and a proxy for dbench throughput).
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.transactions as f64 / secs
    }
}

/// Runs an application profile against the file system.
///
/// # Errors
///
/// Propagates simulator and provider errors.
pub fn run_app<P: BackrefProvider>(fs: &mut FileSystem<P>, config: AppConfig) -> Result<AppResult> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut live: Vec<InodeNo> = Vec::new();
    let mut ops_since_cp = 0u64;
    let mut result = AppResult::default();
    let start = Instant::now();

    let bump =
        |fs: &mut FileSystem<P>, ops_since_cp: &mut u64, result: &mut AppResult| -> Result<()> {
            *ops_since_cp += 1;
            if *ops_since_cp >= config.ops_per_cp {
                let cp = fs.take_consistency_point()?;
                result.provider_pages_written += cp.provider.pages_written;
                result.consistency_points += 1;
                *ops_since_cp = 0;
            }
            Ok(())
        };

    for _ in 0..config.transactions {
        match config.profile {
            AppProfile::Dbench => {
                // A CIFS "client loop" iteration: create a file, write a few
                // blocks, overwrite a block of an existing file, sometimes
                // delete an old file.
                let inode = fs.create_file(LineId::ROOT, rng.gen_range(1..=8))?;
                live.push(inode);
                bump(fs, &mut ops_since_cp, &mut result)?;
                if let Some(&target) = pick(&mut rng, &live) {
                    let len = fs.file_len(LineId::ROOT, target)?.max(1);
                    fs.overwrite(LineId::ROOT, target, rng.gen_range(0..len), 1)?;
                    bump(fs, &mut ops_since_cp, &mut result)?;
                }
                if live.len() > 512 {
                    let victim = live.swap_remove(rng.gen_range(0..live.len()));
                    fs.delete_file(LineId::ROOT, victim)?;
                    bump(fs, &mut ops_since_cp, &mut result)?;
                }
            }
            AppProfile::Varmail => {
                // Mail delivery: create a message file and append to it
                // (fsync modeled by the CP cadence); mailbox read+delete.
                let inode = fs.create_file(LineId::ROOT, 1)?;
                fs.append(LineId::ROOT, inode, rng.gen_range(1..=3))?;
                live.push(inode);
                bump(fs, &mut ops_since_cp, &mut result)?;
                if live.len() > 256 {
                    let victim = live.swap_remove(rng.gen_range(0..live.len()));
                    fs.delete_file(LineId::ROOT, victim)?;
                    bump(fs, &mut ops_since_cp, &mut result)?;
                }
            }
            AppProfile::Postmark => {
                // A PostMark transaction: either create+write or delete, plus
                // an append to a random live file.
                if live.len() < 64 || rng.gen_bool(0.5) {
                    let inode = fs.create_file(LineId::ROOT, rng.gen_range(1..=4))?;
                    live.push(inode);
                } else {
                    let victim = live.swap_remove(rng.gen_range(0..live.len()));
                    fs.delete_file(LineId::ROOT, victim)?;
                }
                bump(fs, &mut ops_since_cp, &mut result)?;
                if let Some(&target) = pick(&mut rng, &live) {
                    fs.append(LineId::ROOT, target, 1)?;
                    bump(fs, &mut ops_since_cp, &mut result)?;
                }
            }
        }
        result.transactions += 1;
    }
    let cp = fs.take_consistency_point()?;
    result.provider_pages_written += cp.provider.pages_written;
    result.consistency_points += 1;
    result.elapsed = start.elapsed();
    Ok(result)
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        items.get(rng.gen_range(0..items.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backlog::BacklogConfig;
    use fsim::{BacklogProvider, FsConfig, NullProvider};

    #[test]
    fn all_profiles_run_to_completion() {
        for profile in [
            AppProfile::Dbench,
            AppProfile::Varmail,
            AppProfile::Postmark,
        ] {
            let mut fs = FileSystem::new(NullProvider::new(), FsConfig::minimal());
            let mut config = AppConfig::new(profile, 200);
            config.ops_per_cp = 64;
            let result = run_app(&mut fs, config).unwrap();
            assert_eq!(result.transactions, 200);
            assert!(result.consistency_points > 1);
            assert!(result.ops_per_sec() > 0.0);
            assert!(!profile.label().is_empty());
        }
    }

    #[test]
    fn runs_are_deterministic_in_op_counts() {
        let run = || {
            let mut fs = FileSystem::new(NullProvider::new(), FsConfig::minimal());
            let mut config = AppConfig::new(AppProfile::Postmark, 300);
            config.ops_per_cp = 128;
            run_app(&mut fs, config).unwrap();
            (
                fs.stats().files_created,
                fs.stats().files_deleted,
                fs.stats().block_ops,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn varmail_with_backlog_stays_consistent() {
        let mut fs = FileSystem::new(
            BacklogProvider::new(BacklogConfig::default().without_timing()),
            FsConfig::minimal(),
        );
        let mut config = AppConfig::new(AppProfile::Varmail, 300);
        config.ops_per_cp = 64;
        run_app(&mut fs, config).unwrap();
        let expected = fs.expected_refs();
        let report = backlog::verify(fs.provider().engine(), &expected, &[]).unwrap();
        assert!(report.is_consistent(), "{report:?}");
    }
}
