//! File create / delete microbenchmarks (paper Table 1, rows 1–6).
//!
//! The paper's microbenchmarks create a set of 4 KB or 64 KB files in the
//! file system's root directory, sync them, and then delete them, taking a
//! consistency point every 2048 or 8192 operations. The reported metric is
//! average milliseconds per operation, including the CP (sync) time.

use std::time::{Duration, Instant};

use backlog::{InodeNo, LineId};
use fsim::{BackrefProvider, FileSystem};

use crate::error::Result;

/// Specification of one microbenchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicrobenchSpec {
    /// Number of files to create (and later delete).
    pub files: u64,
    /// File size in 4 KB blocks (1 for the 4 KB case, 16 for 64 KB).
    pub blocks_per_file: u64,
    /// Operations between consistency points (2048 or 8192 in the paper).
    pub ops_per_cp: u64,
}

impl MicrobenchSpec {
    /// The paper's "creation of a 4 KB file" benchmark shape.
    pub fn small_files(files: u64, ops_per_cp: u64) -> Self {
        MicrobenchSpec {
            files,
            blocks_per_file: 1,
            ops_per_cp,
        }
    }

    /// The paper's "creation of a 64 KB file" benchmark shape.
    pub fn large_files(files: u64, ops_per_cp: u64) -> Self {
        MicrobenchSpec {
            files,
            blocks_per_file: 16,
            ops_per_cp,
        }
    }
}

/// The result of one microbenchmark phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MicrobenchResult {
    /// Number of file operations performed.
    pub operations: u64,
    /// Total elapsed time including consistency points.
    pub elapsed: Duration,
    /// Provider page writes during the phase.
    pub provider_pages_written: u64,
    /// Provider page reads during the phase.
    pub provider_pages_read: u64,
}

impl MicrobenchResult {
    /// Average milliseconds per file operation (the unit of Table 1).
    pub fn millis_per_op(&self) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        self.elapsed.as_secs_f64() * 1_000.0 / self.operations as f64
    }
}

/// Creates `spec.files` files, taking a CP every `spec.ops_per_cp`
/// operations, and returns the created inodes plus timing.
///
/// # Errors
///
/// Propagates simulator and provider errors.
pub fn run_create<P: BackrefProvider>(
    fs: &mut FileSystem<P>,
    spec: MicrobenchSpec,
) -> Result<(Vec<InodeNo>, MicrobenchResult)> {
    let mut inodes = Vec::with_capacity(spec.files as usize);
    let mut result = MicrobenchResult::default();
    let start = Instant::now();
    for i in 0..spec.files {
        inodes.push(fs.create_file(LineId::ROOT, spec.blocks_per_file)?);
        if (i + 1) % spec.ops_per_cp == 0 {
            let cp = fs.take_consistency_point()?;
            result.provider_pages_written += cp.provider.pages_written;
            result.provider_pages_read += cp.provider.pages_read;
        }
    }
    let cp = fs.take_consistency_point()?;
    result.provider_pages_written += cp.provider.pages_written;
    result.provider_pages_read += cp.provider.pages_read;
    result.elapsed = start.elapsed();
    result.operations = spec.files;
    Ok((inodes, result))
}

/// Deletes the given files, taking a CP every `spec.ops_per_cp` operations.
///
/// # Errors
///
/// Propagates simulator and provider errors.
pub fn run_delete<P: BackrefProvider>(
    fs: &mut FileSystem<P>,
    spec: MicrobenchSpec,
    inodes: &[InodeNo],
) -> Result<MicrobenchResult> {
    let mut result = MicrobenchResult::default();
    let start = Instant::now();
    for (i, &inode) in inodes.iter().enumerate() {
        fs.delete_file(LineId::ROOT, inode)?;
        if (i as u64 + 1).is_multiple_of(spec.ops_per_cp) {
            let cp = fs.take_consistency_point()?;
            result.provider_pages_written += cp.provider.pages_written;
            result.provider_pages_read += cp.provider.pages_read;
        }
    }
    let cp = fs.take_consistency_point()?;
    result.provider_pages_written += cp.provider.pages_written;
    result.provider_pages_read += cp.provider.pages_read;
    result.elapsed = start.elapsed();
    result.operations = inodes.len() as u64;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backlog::BacklogConfig;
    use fsim::{BacklogProvider, FsConfig, NullProvider};

    #[test]
    fn create_then_delete_roundtrip() {
        let mut fs = FileSystem::new(NullProvider::new(), FsConfig::minimal());
        let spec = MicrobenchSpec::small_files(100, 32);
        let (inodes, create) = run_create(&mut fs, spec).unwrap();
        assert_eq!(inodes.len(), 100);
        assert_eq!(create.operations, 100);
        assert!(create.millis_per_op() >= 0.0);
        let delete = run_delete(&mut fs, spec, &inodes).unwrap();
        assert_eq!(delete.operations, 100);
        assert_eq!(fs.file_count(LineId::ROOT).unwrap(), 0);
    }

    #[test]
    fn large_file_spec_uses_sixteen_blocks() {
        let spec = MicrobenchSpec::large_files(10, 4);
        assert_eq!(spec.blocks_per_file, 16);
        let mut fs = FileSystem::new(
            BacklogProvider::new(BacklogConfig::default().without_timing()),
            FsConfig::minimal(),
        );
        let (inodes, result) = run_create(&mut fs, spec).unwrap();
        assert_eq!(fs.file_len(LineId::ROOT, inodes[0]).unwrap(), 16);
        assert!(
            result.provider_pages_written > 0,
            "backlog wrote run pages at the CPs"
        );
    }

    #[test]
    fn empty_result_rates_are_zero() {
        assert_eq!(MicrobenchResult::default().millis_per_op(), 0.0);
    }
}
